// Mechanism-side defenses against strategic nodes.
//
// Three independent, individually-toggleable defenses (all off by
// default, so the undefended market is the unchanged baseline):
//
//   * reserve-price screening — before prices are posted, any node whose
//     *reported* participation floor (the minimum payment that clears its
//     reported reserve, 2(μ̂ + E^com)) exceeds `reserve_price` is
//     excluded from the round. Misreporters inflate μ̂, so an aggressive
//     factor prices the node out of the market entirely.
//   * payment-per-delivered-accuracy audits — after delivery, each paid
//     upload is audited with probability `audit_prob` (own deterministic
//     counter stream). An audit compares what the payment bought against
//     what was delivered: a free-ride (stale upload, zero accuracy
//     contribution) is always caught; a misreporter is caught when its
//     claimed-vs-run cost ratio is at least `audit_tolerance`. Flagged
//     nodes have the round's payment clawed back (pay-on-delivery zeroes
//     it) and their reputation zeroed for the round.
//   * reputation-weighted aggregation — the server keeps a per-node EMA
//     of clean delivered contribution (1 for a delivered, unflagged
//     upload; 0 for a flagged or undelivered one). Aggregation weights
//     are scaled by max(reputation, reputation_floor), so persistent
//     polluters lose influence over the global model even when an audit
//     misses them.
//
// Determinism contract: audit draws come from counter-based streams
// keyed on (defense seed, round, node) — same independence guarantees as
// AdversaryPlan/FaultPlan. The reputation ledger is plain serial state
// updated in node order.
#pragma once

#include <cstdint>
#include <vector>

#include "sysmodel/device.h"

namespace chiron::adversary {

struct DefenseConfig {
  /// Reserve-price screen: maximum accepted *reported* participation
  /// floor payment, 2(μ̂ + E^com). 0 disables screening.
  double reserve_price = 0.0;
  /// Per delivered upload per round probability of an audit. 0 disables.
  double audit_prob = 0.0;
  /// Cost-inflation ratio an audit tolerates before flagging a
  /// misreporter (free-riders are always flagged when audited).
  double audit_tolerance = 1.25;
  /// EMA step for the reputation ledger. 0 disables reputation weighting.
  double reputation_alpha = 0.0;
  /// Weight floor so a zero-reputation node can earn its way back.
  double reputation_floor = 0.05;
  std::uint64_t seed = 0;  ///< audit stream, independent of all others

  /// True when any defense is active.
  bool any() const {
    return reserve_price > 0.0 || audit_prob > 0.0 || reputation_alpha > 0.0;
  }
};

/// Validates the config (probabilities, tolerance >= 1, floor in [0,1]).
void validate(const DefenseConfig& config);

/// Deterministic audit draw for one delivered upload — its own
/// counter-based stream per (round, node).
bool audit_fires(const DefenseConfig& config, int round, int node);

/// The cost profile a node reports when misreporting by `factor`: the
/// energy parameters α and c ride up with the factor (their product is
/// what the best response sees) and so does the reserve μ.
sysmodel::DeviceProfile reported_profile(const sysmodel::DeviceProfile& device,
                                         double factor);

/// The minimum payment that clears a profile's reported participation
/// constraint: 2(μ + E^com). This is what reserve-price screening bounds.
double reported_floor_payment(const sysmodel::DeviceProfile& reported);

/// Per-node EMA of clean delivered contribution, mapped to aggregation
/// weights. With reputation_alpha == 0 every weight is exactly 1 (the
/// ledger is inert and aggregation is bit-identical to the undefended
/// path).
class ReputationLedger {
 public:
  ReputationLedger(const DefenseConfig& config, int num_nodes);

  /// Starts a new episode: all reputations back to 1.
  void reset();

  /// Aggregation weight multiplier for `node`:
  /// max(reputation, reputation_floor), or exactly 1 when disabled.
  double weight(int node) const;

  /// Raw reputation value (1 when disabled).
  double reputation(int node) const;

  /// Post-round EMA update: r <- (1-α)r + α·signal. Call only for nodes
  /// with an observable outcome (delivered clean = 1, flagged or failed
  /// delivery = 0); skip nodes that sat the round out.
  void update(int node, double signal);

  int num_nodes() const { return static_cast<int>(reputation_.size()); }

 private:
  DefenseConfig config_;
  std::vector<double> reputation_;
};

}  // namespace chiron::adversary
