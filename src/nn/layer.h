// Layer abstraction for the manual-backprop neural network library.
//
// Each layer owns its parameters (value + gradient tensors). forward()
// caches whatever the matching backward() needs; a layer therefore
// processes one batch at a time (sufficient for both federated local
// training and PPO updates, which are strictly sequential here).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace chiron::nn {

using tensor::Tensor;

/// A trainable parameter: value and accumulated gradient of equal shape.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(Tensor v) : value(std::move(v)), grad(value.shape()) {}
  void zero_grad() { grad.fill(0.f); }
  std::int64_t size() const { return value.size(); }
};

/// Base class of all network layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for input x, caching activations needed by
  /// backward(). `train` distinguishes training from inference (unused by
  /// the current layers but part of the contract).
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input). Must be called after a matching forward().
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// The layer's trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Sum of parameter element counts across a parameter list.
std::int64_t parameter_count(const std::vector<Param*>& params);

}  // namespace chiron::nn
