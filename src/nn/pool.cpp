#include "nn/pool.h"

#include "common/error.h"

namespace chiron::nn {

MaxPool2d::MaxPool2d(std::int64_t window, std::int64_t stride)
    : window_(window), stride_(stride < 0 ? window : stride) {
  CHIRON_CHECK(window_ >= 1 && stride_ >= 1);
}

Tensor MaxPool2d::forward(const Tensor& x, bool /*train*/) {
  input_shape_ = x.shape();
  auto res = tensor::maxpool_forward(x, window_, stride_);
  argmax_ = std::move(res.argmax);
  return std::move(res.output);
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  CHIRON_CHECK_MSG(!argmax_.empty(), "backward before forward");
  return tensor::maxpool_backward(grad_out, input_shape_, argmax_);
}

}  // namespace chiron::nn
