// 2-D convolution (square kernel, no padding by default) via im2col.
#pragma once

#include "nn/layer.h"
#include "tensor/ops.h"

namespace chiron::nn {

class Conv2d final : public Layer {
 public:
  /// He-initialized convolution mapping (B, in_c, H, W) ->
  /// (B, out_c, H', W') with H' = (H + 2·pad − kernel)/stride + 1.
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, Rng& rng, std::int64_t stride = 1,
         std::int64_t pad = 0);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Conv2d"; }

  std::int64_t out_channels() const { return out_c_; }

 private:
  std::int64_t in_c_;
  std::int64_t out_c_;
  std::int64_t kernel_;
  std::int64_t stride_;
  std::int64_t pad_;
  Param weight_;  // (in_c·k·k, out_c) — matmul-ready layout
  Param bias_;    // (out_c)
  // Forward caches and per-layer scratch, reused across calls so the
  // steady-state training loop stops allocating (see ops.h `_into`
  // variants). Each federation node trains its own model replica, so
  // per-layer scratch is never shared across pool threads.
  tensor::ConvGeom geom_;
  Tensor cols_;          // im2col of the last input
  Tensor flat_;          // forward matmul output (B·OH·OW, out_c)
  Tensor gmat_;          // backward grad repacked to rows
  Tensor wgrad_scratch_; // matmul_at result before += into weight grad
  Tensor grad_cols_;     // backward matmul_bt output
  std::int64_t batch_ = 0;
};

}  // namespace chiron::nn
