#include "nn/conv2d.h"

#include <algorithm>

#include "common/error.h"
#include "nn/init.h"
#include "runtime/parallel.h"

namespace chiron::nn {

namespace {
// Same dispatch economics as the tensor kernels: skip fan-out when a
// chunk would carry less than ~16k element-ops.
std::int64_t repack_grain(std::int64_t work_per_row) {
  return std::max<std::int64_t>(
      1, 16384 / std::max<std::int64_t>(1, work_per_row));
}
}  // namespace

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, Rng& rng, std::int64_t stride,
               std::int64_t pad)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(he_normal({in_channels * kernel * kernel, out_channels},
                        in_channels * kernel * kernel, rng)),
      bias_(Tensor::zeros({out_channels})) {
  CHIRON_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0);
  CHIRON_CHECK(stride >= 1 && pad >= 0);
}

Tensor Conv2d::forward(const Tensor& x, bool /*train*/) {
  CHIRON_CHECK_MSG(x.rank() == 4 && x.dim(1) == in_c_,
                   "Conv2d expects (B, " << in_c_ << ", H, W), got " << x);
  batch_ = x.dim(0);
  geom_ = tensor::ConvGeom{in_c_, x.dim(2), x.dim(3), kernel_, stride_, pad_};
  // chiron-hot-begin(conv2d-forward)
  tensor::im2col_into(x, geom_, cols_);
  // (B·OH·OW, patch) × (patch, out_c) = (B·OH·OW, out_c).
  tensor::matmul_into(cols_, weight_.value, flat_);
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  Tensor y({batch_, out_c_, oh, ow});
  const float* pflat = flat_.data();
  const float* pbias = bias_.value.data();
  float* py = y.data();
  // Rows-major (B·OH·OW, out_c) -> NCHW, bias folded into the repack.
  // Each row r writes its own strided slots of y, disjoint across chunks.
  runtime::parallel_for(
      0, batch_ * oh * ow,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t r = lo; r < hi; ++r) {
          const std::int64_t n = r / (oh * ow);
          const std::int64_t pix = r % (oh * ow);
          const float* src = pflat + r * out_c_;
          float* dst = py + (n * out_c_) * oh * ow + pix;
          for (std::int64_t c = 0; c < out_c_; ++c)
            dst[c * oh * ow] = src[c] + pbias[c];
        }
      },
      repack_grain(out_c_));
  return y;
  // chiron-hot-end(conv2d-forward)
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  CHIRON_CHECK_MSG(cols_.size() > 0, "backward before forward");
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  CHIRON_CHECK(grad_out.rank() == 4 && grad_out.dim(0) == batch_ &&
               grad_out.dim(1) == out_c_ && grad_out.dim(2) == oh &&
               grad_out.dim(3) == ow);
  // NCHW grad -> row-major (B·OH·OW, out_c) to match the forward matmul.
  // chiron-hot-begin(conv2d-backward)
  // chiron-lint: allow(AL1): Tensor::resize reuses capacity once shapes settle
  gmat_.resize({batch_ * oh * ow, out_c_});
  const float* pgo = grad_out.data();
  float* pgm = gmat_.data();
  runtime::parallel_for(
      0, batch_ * oh * ow,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t r = lo; r < hi; ++r) {
          const std::int64_t n = r / (oh * ow);
          const std::int64_t pix = r % (oh * ow);
          const float* src = pgo + (n * out_c_) * oh * ow + pix;
          float* dst = pgm + r * out_c_;
          for (std::int64_t c = 0; c < out_c_; ++c) dst[c] = src[c * oh * ow];
        }
      },
      repack_grain(out_c_));
  tensor::matmul_at_into(cols_, gmat_, wgrad_scratch_);
  weight_.grad += wgrad_scratch_;
  for (std::int64_t r = 0; r < gmat_.dim(0); ++r)
    for (std::int64_t c = 0; c < out_c_; ++c)
      bias_.grad[c] += gmat_.at2(r, c);
  tensor::matmul_bt_into(gmat_, weight_.value, grad_cols_);
  return tensor::col2im(grad_cols_, batch_, geom_);
  // chiron-hot-end(conv2d-backward)
}

}  // namespace chiron::nn
