#include "nn/conv2d.h"

#include "common/error.h"
#include "nn/init.h"

namespace chiron::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, Rng& rng, std::int64_t stride,
               std::int64_t pad)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(he_normal({in_channels * kernel * kernel, out_channels},
                        in_channels * kernel * kernel, rng)),
      bias_(Tensor::zeros({out_channels})) {
  CHIRON_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0);
  CHIRON_CHECK(stride >= 1 && pad >= 0);
}

Tensor Conv2d::forward(const Tensor& x, bool /*train*/) {
  CHIRON_CHECK_MSG(x.rank() == 4 && x.dim(1) == in_c_,
                   "Conv2d expects (B, " << in_c_ << ", H, W), got " << x);
  batch_ = x.dim(0);
  geom_ = tensor::ConvGeom{in_c_, x.dim(2), x.dim(3), kernel_, stride_, pad_};
  cols_ = tensor::im2col(x, geom_);
  // (B·OH·OW, patch) × (patch, out_c) = (B·OH·OW, out_c).
  Tensor flat = tensor::matmul(cols_, weight_.value);
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  Tensor y({batch_, out_c_, oh, ow});
  for (std::int64_t n = 0; n < batch_; ++n)
    for (std::int64_t yix = 0; yix < oh; ++yix)
      for (std::int64_t x_ = 0; x_ < ow; ++x_) {
        const std::int64_t r = (n * oh + yix) * ow + x_;
        for (std::int64_t c = 0; c < out_c_; ++c)
          y.at4(n, c, yix, x_) = flat.at2(r, c) + bias_.value[c];
      }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  CHIRON_CHECK_MSG(cols_.size() > 0, "backward before forward");
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  CHIRON_CHECK(grad_out.rank() == 4 && grad_out.dim(0) == batch_ &&
               grad_out.dim(1) == out_c_ && grad_out.dim(2) == oh &&
               grad_out.dim(3) == ow);
  // NCHW grad -> row-major (B·OH·OW, out_c) to match the forward matmul.
  Tensor gmat({batch_ * oh * ow, out_c_});
  for (std::int64_t n = 0; n < batch_; ++n)
    for (std::int64_t yix = 0; yix < oh; ++yix)
      for (std::int64_t x_ = 0; x_ < ow; ++x_) {
        const std::int64_t r = (n * oh + yix) * ow + x_;
        for (std::int64_t c = 0; c < out_c_; ++c)
          gmat.at2(r, c) = grad_out.at4(n, c, yix, x_);
      }
  weight_.grad += tensor::matmul_at(cols_, gmat);
  for (std::int64_t r = 0; r < gmat.dim(0); ++r)
    for (std::int64_t c = 0; c < out_c_; ++c)
      bias_.grad[c] += gmat.at2(r, c);
  Tensor grad_cols = tensor::matmul_bt(gmat, weight_.value);
  return tensor::col2im(grad_cols, batch_, geom_);
}

}  // namespace chiron::nn
