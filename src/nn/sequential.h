// Sequential container of layers — the network type used by both the
// federated models and the PPO actor/critic networks.
#pragma once

#include <memory>
#include <utility>

#include "nn/layer.h"

namespace chiron::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& add(LayerPtr layer);

  /// Convenience: constructs the layer in place.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "Sequential"; }

  /// Sets every parameter gradient to zero.
  void zero_grad();

  /// Total number of trainable scalars.
  std::int64_t parameter_count();

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace chiron::nn
