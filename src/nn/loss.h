// Loss functions. SoftmaxCrossEntropy is fused (stable log-softmax) and is
// the training loss of every classification model in the simulator; MSE is
// used by the PPO critic.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace chiron::nn {

using tensor::Tensor;

/// Fused softmax + cross-entropy over a batch of logits.
class SoftmaxCrossEntropy {
 public:
  /// logits: (B, C); labels: B class indices in [0, C).
  /// Returns the mean loss and caches what backward() needs.
  float forward(const Tensor& logits, const std::vector<int>& labels);

  /// dL/d(logits) = (softmax − one_hot) / B for the cached batch.
  Tensor backward() const;

  /// Cached softmax probabilities (B, C) from the last forward.
  const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<int> labels_;
};

/// Mean squared error 1/B · Σ (pred − target)².
class MeanSquaredError {
 public:
  /// pred and target: (B, 1) or any matching shapes.
  float forward(const Tensor& pred, const Tensor& target);
  Tensor backward() const;

 private:
  Tensor pred_;
  Tensor target_;
};

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace chiron::nn
