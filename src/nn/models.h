// Factory functions for the model architectures the paper evaluates, plus
// the MLPs used by the PPO agents.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "nn/sequential.h"

namespace chiron::nn {

/// The paper's MNIST / Fashion-MNIST CNN (§VI-A): 5×5 conv (10 ch) → 2×2
/// max pool → ReLU → 5×5 conv (20 ch) → 2×2 max pool → ReLU → FC 320→50 →
/// ReLU → FC 50→10. Exactly 21,840 trainable parameters.
std::unique_ptr<Sequential> make_mnist_cnn(Rng& rng);

/// The paper's CIFAR-10 LeNet (§VI-A): 5×5 conv (6 ch) → pool → ReLU →
/// 5×5 conv (16 ch) → pool → ReLU → FC 400→120 → ReLU → FC 120→84 → ReLU →
/// FC 84→10. Exactly 62,006 trainable parameters.
std::unique_ptr<Sequential> make_lenet_cifar(Rng& rng);

/// Small MLP classifier for fast tests/examples: in → hidden (ReLU) → out.
std::unique_ptr<Sequential> make_mlp_classifier(std::int64_t in,
                                                std::int64_t hidden,
                                                std::int64_t out, Rng& rng);

/// Tanh MLP used as PPO actor/critic trunk: in → h → h → out.
std::unique_ptr<Sequential> make_tanh_mlp(std::int64_t in, std::int64_t hidden,
                                          std::int64_t out, Rng& rng);

}  // namespace chiron::nn
