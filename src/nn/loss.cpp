#include "nn/loss.h"

#include <cmath>

#include "common/error.h"
#include "tensor/ops.h"

namespace chiron::nn {

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<int>& labels) {
  CHIRON_CHECK(logits.rank() == 2);
  const std::int64_t batch = logits.dim(0), classes = logits.dim(1);
  CHIRON_CHECK_MSG(static_cast<std::int64_t>(labels.size()) == batch,
                   "labels size " << labels.size() << " vs batch " << batch);
  probs_ = tensor::softmax_rows(logits);
  labels_ = labels;
  double loss = 0.0;
  for (std::int64_t b = 0; b < batch; ++b) {
    const int y = labels[static_cast<std::size_t>(b)];
    CHIRON_CHECK_MSG(y >= 0 && y < classes, "label " << y << " out of range");
    loss += -std::log(std::max(probs_.at2(b, y), 1e-12f));
  }
  return static_cast<float>(loss / static_cast<double>(batch));
}

Tensor SoftmaxCrossEntropy::backward() const {
  CHIRON_CHECK_MSG(probs_.size() > 0, "backward before forward");
  Tensor g = probs_;
  const std::int64_t batch = g.dim(0);
  const float inv_b = 1.f / static_cast<float>(batch);
  for (std::int64_t b = 0; b < batch; ++b) {
    g.at2(b, labels_[static_cast<std::size_t>(b)]) -= 1.f;
  }
  g *= inv_b;
  return g;
}

float MeanSquaredError::forward(const Tensor& pred, const Tensor& target) {
  CHIRON_CHECK_MSG(pred.shape() == target.shape(), "MSE shape mismatch");
  pred_ = pred;
  target_ = target;
  double acc = 0.0;
  for (std::int64_t i = 0; i < pred.size(); ++i) {
    const double d = static_cast<double>(pred[i]) - target[i];
    acc += d * d;
  }
  return static_cast<float>(acc / static_cast<double>(pred.size()));
}

Tensor MeanSquaredError::backward() const {
  CHIRON_CHECK_MSG(pred_.size() > 0, "backward before forward");
  Tensor g = pred_;
  g -= target_;
  g *= 2.f / static_cast<float>(pred_.size());
  return g;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  CHIRON_CHECK(logits.rank() == 2);
  const std::int64_t batch = logits.dim(0), classes = logits.dim(1);
  CHIRON_CHECK(static_cast<std::int64_t>(labels.size()) == batch);
  std::int64_t correct = 0;
  for (std::int64_t b = 0; b < batch; ++b) {
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < classes; ++c)
      if (logits.at2(b, c) > logits.at2(b, best)) best = c;
    if (best == labels[static_cast<std::size_t>(b)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(batch);
}

}  // namespace chiron::nn
