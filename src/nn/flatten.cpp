#include "nn/flatten.h"

#include "common/error.h"

namespace chiron::nn {

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  CHIRON_CHECK(x.rank() >= 2);
  input_shape_ = x.shape();
  const std::int64_t batch = x.dim(0);
  return x.reshape({batch, x.size() / batch});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  CHIRON_CHECK(!input_shape_.empty());
  return grad_out.reshape(input_shape_);
}

}  // namespace chiron::nn
