#include "nn/models.h"

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/flatten.h"
#include "nn/linear.h"
#include "nn/pool.h"

namespace chiron::nn {

std::unique_ptr<Sequential> make_mnist_cnn(Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(1, 10, 5, rng);   // 28 -> 24
  net->emplace<MaxPool2d>(2);            // 24 -> 12
  net->emplace<ReLU>();
  net->emplace<Conv2d>(10, 20, 5, rng);  // 12 -> 8
  net->emplace<MaxPool2d>(2);            // 8 -> 4
  net->emplace<ReLU>();
  net->emplace<Flatten>();               // 20·4·4 = 320
  net->emplace<Linear>(320, 50, rng);
  net->emplace<ReLU>();
  net->emplace<Linear>(50, 10, rng);
  return net;
}

std::unique_ptr<Sequential> make_lenet_cifar(Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(3, 6, 5, rng);    // 32 -> 28
  net->emplace<MaxPool2d>(2);            // 28 -> 14
  net->emplace<ReLU>();
  net->emplace<Conv2d>(6, 16, 5, rng);   // 14 -> 10
  net->emplace<MaxPool2d>(2);            // 10 -> 5
  net->emplace<ReLU>();
  net->emplace<Flatten>();               // 16·5·5 = 400
  net->emplace<Linear>(400, 120, rng);
  net->emplace<ReLU>();
  net->emplace<Linear>(120, 84, rng);
  net->emplace<ReLU>();
  net->emplace<Linear>(84, 10, rng);
  return net;
}

std::unique_ptr<Sequential> make_mlp_classifier(std::int64_t in,
                                                std::int64_t hidden,
                                                std::int64_t out, Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Linear>(in, hidden, rng);
  net->emplace<ReLU>();
  net->emplace<Linear>(hidden, out, rng);
  return net;
}

std::unique_ptr<Sequential> make_tanh_mlp(std::int64_t in, std::int64_t hidden,
                                          std::int64_t out, Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Linear>(in, hidden, rng);
  net->emplace<Tanh>();
  net->emplace<Linear>(hidden, hidden, rng);
  net->emplace<Tanh>();
  net->emplace<Linear>(hidden, out, rng);
  return net;
}

}  // namespace chiron::nn
