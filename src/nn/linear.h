// Fully connected layer: y = x·W + b.
#pragma once

#include "nn/layer.h"

namespace chiron::nn {

class Linear final : public Layer {
 public:
  /// Xavier-initialized dense layer mapping (B, in) -> (B, out).
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Linear"; }

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  std::int64_t in_;
  std::int64_t out_;
  Param weight_;  // (in, out)
  Param bias_;    // (out)
  Tensor input_;  // cached forward input
  Tensor wgrad_scratch_;  // matmul_at result before += into weight grad
};

}  // namespace chiron::nn
