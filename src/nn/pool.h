// Max-pooling layer.
#pragma once

#include "nn/layer.h"
#include "tensor/ops.h"

namespace chiron::nn {

class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::int64_t window, std::int64_t stride = -1);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "MaxPool2d"; }

 private:
  std::int64_t window_;
  std::int64_t stride_;
  tensor::Shape input_shape_;
  std::vector<std::int64_t> argmax_;
};

}  // namespace chiron::nn
