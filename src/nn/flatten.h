// Flattens (B, ...) to (B, prod(...)).
#pragma once

#include "nn/layer.h"

namespace chiron::nn {

class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Flatten"; }

 private:
  tensor::Shape input_shape_;
};

}  // namespace chiron::nn
