#include "nn/dropout.h"

#include <cmath>

#include "common/error.h"

namespace chiron::nn {

Dropout::Dropout(double rate, Rng rng) : rate_(rate), rng_(rng) {
  CHIRON_CHECK_MSG(rate >= 0.0 && rate < 1.0, "dropout rate " << rate);
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  last_train_ = train;
  if (!train || rate_ == 0.0) return x;
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  mask_ = Tensor(x.shape());
  Tensor y = x;
  for (std::int64_t i = 0; i < x.size(); ++i) {
    const bool keep = !rng_.bernoulli(rate_);
    mask_[i] = keep ? keep_scale : 0.f;
    y[i] *= mask_[i];
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (!last_train_ || rate_ == 0.0) return grad_out;
  CHIRON_CHECK(grad_out.shape() == mask_.shape());
  return grad_out.hadamard(mask_);
}

Tensor Sigmoid::forward(const Tensor& x, bool /*train*/) {
  Tensor y = x;
  for (std::int64_t i = 0; i < y.size(); ++i)
    y[i] = 1.f / (1.f + std::exp(-y[i]));
  output_ = y;
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  CHIRON_CHECK(grad_out.shape() == output_.shape());
  Tensor g = grad_out;
  for (std::int64_t i = 0; i < g.size(); ++i)
    g[i] *= output_[i] * (1.f - output_[i]);
  return g;
}

}  // namespace chiron::nn
