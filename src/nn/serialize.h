// Flat parameter vectors — the wire format of the edge-learning simulator.
//
// FedAvg (Eqn 4) averages model parameters across nodes; we represent an
// uploaded/downloaded model as a single std::vector<float> and copy it in
// and out of a network's Param list in declaration order.
#pragma once

#include <string>
#include <vector>

#include "nn/sequential.h"

namespace chiron::nn {

/// Copies all parameters of `net` into one flat vector (declaration order).
std::vector<float> get_flat_params(Sequential& net);

/// Loads a flat vector produced by get_flat_params back into `net`.
/// Sizes must match exactly.
void set_flat_params(Sequential& net, const std::vector<float>& flat);

/// Generic variants over an explicit parameter list (used for PPO agents,
/// whose trainables are a network plus a standalone log-std vector).
std::vector<float> get_flat_params(const std::vector<Param*>& params);
void set_flat_params(const std::vector<Param*>& params,
                     const std::vector<float>& flat);

/// Binary checkpoint format: a magic tag, then length-prefixed float
/// blocks. Blocks are written/read in order; loading validates the magic
/// and block sizes and throws InvariantError on any mismatch.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(const std::string& path);
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  void write_block(const std::vector<float>& values);

  /// Writes a metadata block of raw doubles (config headers: format
  /// versions, tensor dims, price caps). Meta blocks share the stream
  /// with float blocks and must be consumed in the written order via
  /// CheckpointReader::read_meta.
  void write_meta(const std::vector<double>& values);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

class CheckpointReader {
 public:
  explicit CheckpointReader(const std::string& path);
  ~CheckpointReader();
  CheckpointReader(const CheckpointReader&) = delete;
  CheckpointReader& operator=(const CheckpointReader&) = delete;

  /// Reads the next block; `expected_size` must match the stored length.
  std::vector<float> read_block(std::size_t expected_size);

  /// Reads the next float block at whatever length is stored (capped at a
  /// plausibility bound so a garbage length cannot trigger a huge
  /// allocation). Used by loaders that size themselves from a config
  /// header instead of a pre-built network — e.g. the serving engine.
  std::vector<float> read_block_any();

  /// Reads a metadata block written by CheckpointWriter::write_meta;
  /// `expected_size` must match the stored length.
  std::vector<double> read_meta(std::size_t expected_size);

  /// Asserts that every block has been consumed: throws InvariantError if
  /// any bytes remain (trailing garbage, or a reader that under-read).
  /// Call after the last expected read_block.
  void expect_eof();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Weighted average Σ w_i·flat_i with Σ w_i normalized to 1.
/// All vectors must be the same length; weights must be non-negative and
/// finite with a positive sum, and every model value must be finite —
/// NaN/Inf in any input throws InvariantError instead of silently
/// poisoning the global model.
std::vector<float> weighted_average(
    const std::vector<std::vector<float>>& models,
    const std::vector<double>& weights);

}  // namespace chiron::nn
