#include "nn/activations.h"

#include <cmath>

#include "common/error.h"

namespace chiron::nn {

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  input_ = x;
  Tensor y = x;
  for (std::int64_t i = 0; i < y.size(); ++i)
    if (y[i] < 0.f) y[i] = 0.f;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  CHIRON_CHECK(grad_out.shape() == input_.shape());
  Tensor g = grad_out;
  for (std::int64_t i = 0; i < g.size(); ++i)
    if (input_[i] <= 0.f) g[i] = 0.f;
  return g;
}

Tensor Tanh::forward(const Tensor& x, bool /*train*/) {
  Tensor y = x;
  for (std::int64_t i = 0; i < y.size(); ++i) y[i] = std::tanh(y[i]);
  output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  CHIRON_CHECK(grad_out.shape() == output_.shape());
  Tensor g = grad_out;
  for (std::int64_t i = 0; i < g.size(); ++i)
    g[i] *= 1.f - output_[i] * output_[i];
  return g;
}

}  // namespace chiron::nn
