#include "nn/serialize.h"

#include <cmath>
#include <cstdint>
#include <fstream>

#include "common/error.h"

namespace chiron::nn {

namespace {
constexpr std::uint32_t kCheckpointMagic = 0x43484952;  // "CHIR"
// Plausibility cap for read_block_any: 2^28 floats = 1 GiB. A stored
// length beyond this is certainly a corrupt or foreign file, and failing
// here beats letting a garbage 64-bit length drive a huge allocation.
constexpr std::uint64_t kMaxAnyBlockElems = std::uint64_t{1} << 28;
}

std::vector<float> get_flat_params(Sequential& net) {
  std::vector<float> flat;
  for (Param* p : net.params()) {
    flat.insert(flat.end(), p->value.vec().begin(), p->value.vec().end());
  }
  return flat;
}

void set_flat_params(Sequential& net, const std::vector<float>& flat) {
  std::size_t offset = 0;
  for (Param* p : net.params()) {
    const std::size_t n = p->value.vec().size();
    CHIRON_CHECK_MSG(offset + n <= flat.size(),
                     "flat parameter vector too short");
    std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(offset),
                static_cast<std::ptrdiff_t>(n), p->value.vec().begin());
    offset += n;
  }
  CHIRON_CHECK_MSG(offset == flat.size(),
                   "flat parameter vector has " << flat.size()
                                                << " values, network needs "
                                                << offset);
}

std::vector<float> get_flat_params(const std::vector<Param*>& params) {
  std::vector<float> flat;
  for (Param* p : params) {
    CHIRON_CHECK(p != nullptr);
    flat.insert(flat.end(), p->value.vec().begin(), p->value.vec().end());
  }
  return flat;
}

void set_flat_params(const std::vector<Param*>& params,
                     const std::vector<float>& flat) {
  std::size_t offset = 0;
  for (Param* p : params) {
    CHIRON_CHECK(p != nullptr);
    const std::size_t n = p->value.vec().size();
    CHIRON_CHECK_MSG(offset + n <= flat.size(),
                     "flat parameter vector too short");
    std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(offset),
                static_cast<std::ptrdiff_t>(n), p->value.vec().begin());
    offset += n;
  }
  CHIRON_CHECK_MSG(offset == flat.size(), "flat parameter vector too long");
}

struct CheckpointWriter::Impl {
  std::ofstream os;
};

CheckpointWriter::CheckpointWriter(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->os.open(path, std::ios::binary | std::ios::trunc);
  CHIRON_CHECK_MSG(impl_->os.good(), "cannot open checkpoint " << path);
  const std::uint32_t magic = kCheckpointMagic;
  impl_->os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
}

CheckpointWriter::~CheckpointWriter() = default;

void CheckpointWriter::write_block(const std::vector<float>& values) {
  const std::uint64_t n = values.size();
  impl_->os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  impl_->os.write(reinterpret_cast<const char*>(values.data()),
                  static_cast<std::streamsize>(n * sizeof(float)));
  CHIRON_CHECK_MSG(impl_->os.good(), "checkpoint write failed");
}

void CheckpointWriter::write_meta(const std::vector<double>& values) {
  const std::uint64_t n = values.size();
  impl_->os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  impl_->os.write(reinterpret_cast<const char*>(values.data()),
                  static_cast<std::streamsize>(n * sizeof(double)));
  CHIRON_CHECK_MSG(impl_->os.good(), "checkpoint meta write failed");
}

struct CheckpointReader::Impl {
  std::ifstream is;
};

CheckpointReader::CheckpointReader(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->is.open(path, std::ios::binary);
  CHIRON_CHECK_MSG(impl_->is.good(), "cannot open checkpoint " << path);
  std::uint32_t magic = 0;
  impl_->is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  CHIRON_CHECK_MSG(impl_->is.good() && magic == kCheckpointMagic,
                   "not a chiron checkpoint: " << path);
}

CheckpointReader::~CheckpointReader() = default;

std::vector<float> CheckpointReader::read_block(std::size_t expected_size) {
  std::uint64_t n = 0;
  impl_->is.read(reinterpret_cast<char*>(&n), sizeof(n));
  CHIRON_CHECK_MSG(impl_->is.good(), "truncated checkpoint");
  CHIRON_CHECK_MSG(n == expected_size, "checkpoint block has " << n
                                           << " values, expected "
                                           << expected_size);
  std::vector<float> values(static_cast<std::size_t>(n));
  impl_->is.read(reinterpret_cast<char*>(values.data()),
                 static_cast<std::streamsize>(n * sizeof(float)));
  CHIRON_CHECK_MSG(impl_->is.good(), "truncated checkpoint block");
  return values;
}

std::vector<float> CheckpointReader::read_block_any() {
  std::uint64_t n = 0;
  impl_->is.read(reinterpret_cast<char*>(&n), sizeof(n));
  CHIRON_CHECK_MSG(impl_->is.good(), "truncated checkpoint");
  CHIRON_CHECK_MSG(n <= kMaxAnyBlockElems,
                   "implausible checkpoint block size " << n
                       << " — corrupt or foreign file");
  std::vector<float> values(static_cast<std::size_t>(n));
  impl_->is.read(reinterpret_cast<char*>(values.data()),
                 static_cast<std::streamsize>(n * sizeof(float)));
  CHIRON_CHECK_MSG(impl_->is.good(), "truncated checkpoint block");
  return values;
}

std::vector<double> CheckpointReader::read_meta(std::size_t expected_size) {
  std::uint64_t n = 0;
  impl_->is.read(reinterpret_cast<char*>(&n), sizeof(n));
  CHIRON_CHECK_MSG(impl_->is.good(), "truncated checkpoint");
  CHIRON_CHECK_MSG(n == expected_size, "checkpoint meta block has "
                                           << n << " values, expected "
                                           << expected_size);
  std::vector<double> values(static_cast<std::size_t>(n));
  impl_->is.read(reinterpret_cast<char*>(values.data()),
                 static_cast<std::streamsize>(n * sizeof(double)));
  CHIRON_CHECK_MSG(impl_->is.good(), "truncated checkpoint meta block");
  return values;
}

void CheckpointReader::expect_eof() {
  CHIRON_CHECK_MSG(impl_->is.peek() == std::ifstream::traits_type::eof(),
                   "trailing bytes after the last checkpoint block");
}

std::vector<float> weighted_average(
    const std::vector<std::vector<float>>& models,
    const std::vector<double>& weights) {
  CHIRON_CHECK(!models.empty());
  CHIRON_CHECK(models.size() == weights.size());
  double total = 0.0;
  for (double w : weights) {
    CHIRON_CHECK_MSG(w >= 0.0, "negative aggregation weight");
    CHIRON_CHECK_MSG(std::isfinite(w), "non-finite aggregation weight");
    total += w;
  }
  CHIRON_CHECK_MSG(total > 0.0, "aggregation weights sum to zero");
  const std::size_t n = models.front().size();
  std::vector<double> acc(n, 0.0);
  for (std::size_t m = 0; m < models.size(); ++m) {
    CHIRON_CHECK_MSG(models[m].size() == n, "model size mismatch in FedAvg");
    for (std::size_t i = 0; i < n; ++i)
      CHIRON_CHECK_MSG(std::isfinite(models[m][i]),
                       "non-finite value in model " << m << " at index " << i
                           << " — reject corrupt uploads before FedAvg");
    const double w = weights[m] / total;
    for (std::size_t i = 0; i < n; ++i) acc[i] += w * models[m][i];
  }
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<float>(acc[i]);
  return out;
}

}  // namespace chiron::nn
