#include "nn/layer.h"

namespace chiron::nn {

std::int64_t parameter_count(const std::vector<Param*>& params) {
  std::int64_t n = 0;
  for (const Param* p : params) n += p->size();
  return n;
}

}  // namespace chiron::nn
