// Inverted dropout: active only in training mode; at inference the layer
// is the identity. Used by extension experiments on regularized local
// training.
#pragma once

#include "common/rng.h"
#include "nn/layer.h"

namespace chiron::nn {

class Dropout final : public Layer {
 public:
  /// Drops each activation with probability `rate` (0 <= rate < 1) and
  /// scales survivors by 1/(1-rate). The layer owns its RNG stream so that
  /// training remains reproducible per layer.
  Dropout(double rate, Rng rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Dropout"; }

  double rate() const { return rate_; }

 private:
  double rate_;
  Rng rng_;
  Tensor mask_;       // scaled keep-mask of the last training forward
  bool last_train_ = false;
};

/// Logistic sigmoid activation.
class Sigmoid final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Tensor output_;
};

}  // namespace chiron::nn
