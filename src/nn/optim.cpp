#include "nn/optim.h"

#include <cmath>

#include "common/error.h"

namespace chiron::nn {

Optimizer::Optimizer(std::vector<Param*> params)
    : params_(std::move(params)) {
  CHIRON_CHECK_MSG(!params_.empty(), "optimizer over no parameters");
  for (const Param* p : params_) CHIRON_CHECK(p != nullptr);
}

void Optimizer::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

Sgd::Sgd(std::vector<Param*> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (const Param* p : params_)
    velocity_.emplace_back(Tensor::zeros(p->value.shape()));
}

void Sgd::step() {
  const float lr = static_cast<float>(lr_);
  const float m = static_cast<float>(momentum_);
  const float wd = static_cast<float>(weight_decay_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& v = velocity_[i];
    for (std::int64_t j = 0; j < p.size(); ++j) {
      v[j] = m * v[j] + p.grad[j] + wd * p.value[j];
      p.value[j] -= lr * v[j];
    }
  }
}

Adam::Adam(std::vector<Param*> params, double lr, double beta1, double beta2,
           double eps, double weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(Tensor::zeros(p->value.shape()));
    v_.emplace_back(Tensor::zeros(p->value.shape()));
  }
}

void Adam::step() {
  ++t_;
  const double b1t = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double b2t = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const float lr = static_cast<float>(lr_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::int64_t j = 0; j < p.size(); ++j) {
      const float g = p.grad[j];
      m[j] = static_cast<float>(beta1_) * m[j] +
             static_cast<float>(1.0 - beta1_) * g;
      v[j] = static_cast<float>(beta2_) * v[j] +
             static_cast<float>(1.0 - beta2_) * g * g;
      const double mhat = m[j] / b1t;
      const double vhat = v[j] / b2t;
      p.value[j] -=
          lr * static_cast<float>(mhat / (std::sqrt(vhat) + eps_));
      if (weight_decay_ != 0.0)
        p.value[j] -= lr * static_cast<float>(weight_decay_) * p.value[j];
    }
  }
}

double clip_grad_norm(const std::vector<Param*>& params, double max_norm) {
  CHIRON_CHECK(max_norm > 0.0);
  double sq = 0.0;
  for (const Param* p : params)
    for (std::int64_t j = 0; j < p->size(); ++j)
      sq += static_cast<double>(p->grad[j]) * p->grad[j];
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    const float scale = static_cast<float>(max_norm / (norm + 1e-12));
    for (const Param* p : params)
      for (std::int64_t j = 0; j < p->size(); ++j)
        const_cast<Param*>(p)->grad[j] *= scale;
  }
  return norm;
}

}  // namespace chiron::nn
