#include "nn/sequential.h"

#include "common/error.h"

namespace chiron::nn {

Sequential& Sequential::add(LayerPtr layer) {
  CHIRON_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor h = x;
  for (auto& l : layers_) h = l->forward(h, train);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  CHIRON_CHECK_MSG(!layers_.empty(), "empty Sequential");
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& l : layers_)
    for (Param* p : l->params()) out.push_back(p);
  return out;
}

void Sequential::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

std::int64_t Sequential::parameter_count() {
  return chiron::nn::parameter_count(params());
}

}  // namespace chiron::nn
