#include "nn/linear.h"

#include "common/error.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace chiron::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(xavier_uniform({in_features, out_features}, in_features,
                             out_features, rng)),
      bias_(Tensor::zeros({out_features})) {
  CHIRON_CHECK(in_features > 0 && out_features > 0);
}

Tensor Linear::forward(const Tensor& x, bool /*train*/) {
  CHIRON_CHECK_MSG(x.rank() == 2 && x.dim(1) == in_,
                   "Linear expects (B, " << in_ << "), got " << x);
  input_ = x;
  Tensor y = tensor::matmul(x, weight_.value);
  const std::int64_t batch = y.dim(0);
  for (std::int64_t b = 0; b < batch; ++b)
    for (std::int64_t j = 0; j < out_; ++j) y.at2(b, j) += bias_.value[j];
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  CHIRON_CHECK(grad_out.rank() == 2 && grad_out.dim(1) == out_);
  CHIRON_CHECK_MSG(input_.size() > 0, "backward before forward");
  // dW += x^T · g ; db += column sums ; dx = g · W^T.
  // chiron-hot-begin(linear-backward)
  tensor::matmul_at_into(input_, grad_out, wgrad_scratch_);
  weight_.grad += wgrad_scratch_;
  const std::int64_t batch = grad_out.dim(0);
  for (std::int64_t b = 0; b < batch; ++b)
    for (std::int64_t j = 0; j < out_; ++j)
      bias_.grad[j] += grad_out.at2(b, j);
  return tensor::matmul_bt(grad_out, weight_.value);
  // chiron-hot-end(linear-backward)
}

}  // namespace chiron::nn
