// Weight initialization schemes.
#pragma once

#include <cmath>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace chiron::nn {

/// Kaiming/He normal init for ReLU fan-in.
inline tensor::Tensor he_normal(tensor::Shape shape, std::int64_t fan_in,
                                chiron::Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return tensor::Tensor::normal(std::move(shape), rng, 0.f, stddev);
}

/// Xavier/Glorot uniform init for tanh/linear layers.
inline tensor::Tensor xavier_uniform(tensor::Shape shape, std::int64_t fan_in,
                                     std::int64_t fan_out, chiron::Rng& rng) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return tensor::Tensor::uniform(std::move(shape), rng, -bound, bound);
}

}  // namespace chiron::nn
