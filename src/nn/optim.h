// First-order optimizers over a parameter list.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace chiron::nn {

/// Common optimizer interface. Owners keep the parameter list stable for
/// the optimizer's lifetime (per-parameter state is positional).
class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params);
  virtual ~Optimizer() = default;

  /// Applies one update using the accumulated gradients.
  virtual void step() = 0;

  void zero_grad();
  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 protected:
  std::vector<Param*> params_;
  double lr_ = 1e-2;
};

/// Plain SGD with optional momentum and L2 weight decay:
/// v = m·v + (g + wd·w); w -= lr·v.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, double lr, double momentum = 0.0,
      double weight_decay = 0.0);
  void step() override;

 private:
  double momentum_;
  double weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction and decoupled weight
/// decay (AdamW-style: decay applied directly to the weights).
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);
  void step() override;

 private:
  double beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Global gradient-norm clipping; returns the pre-clip norm.
double clip_grad_norm(const std::vector<Param*>& params, double max_norm);

}  // namespace chiron::nn
