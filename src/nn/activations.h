// Stateless element-wise activation layers.
#pragma once

#include "nn/layer.h"

namespace chiron::nn {

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor input_;
};

class Tanh final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor output_;
};

}  // namespace chiron::nn
