#include "data/loader.h"

#include <algorithm>

#include "common/error.h"

namespace chiron::data {

BatchLoader::BatchLoader(const Dataset& dataset, std::int64_t batch_size,
                         Rng& rng)
    : dataset_(dataset), batch_size_(batch_size), rng_(rng) {
  CHIRON_CHECK(batch_size_ >= 1);
  CHIRON_CHECK(dataset_.size() >= 1);
  reset();
}

void BatchLoader::reset() {
  order_ = rng_.permutation(static_cast<int>(dataset_.size()));
  cursor_ = 0;
}

bool BatchLoader::has_next() const { return cursor_ < order_.size(); }

std::pair<Tensor, std::vector<int>> BatchLoader::next() {
  CHIRON_CHECK_MSG(has_next(), "epoch exhausted; call reset()");
  const std::size_t take = std::min(static_cast<std::size_t>(batch_size_),
                                    order_.size() - cursor_);
  std::vector<int> indices(order_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                           order_.begin() +
                               static_cast<std::ptrdiff_t>(cursor_ + take));
  cursor_ += take;
  return dataset_.gather(indices);
}

std::int64_t BatchLoader::batches_per_epoch() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

}  // namespace chiron::data
