#include "data/partition.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace chiron::data {

std::vector<Dataset> iid_partition(const Dataset& dataset, int nodes,
                                   Rng& rng) {
  CHIRON_CHECK(nodes >= 1);
  CHIRON_CHECK_MSG(dataset.size() >= nodes,
                   "fewer samples than nodes: " << dataset.size() << " < "
                                                << nodes);
  std::vector<int> order = rng.permutation(static_cast<int>(dataset.size()));
  std::vector<std::vector<int>> buckets(static_cast<std::size_t>(nodes));
  for (std::size_t i = 0; i < order.size(); ++i)
    buckets[i % static_cast<std::size_t>(nodes)].push_back(order[i]);
  std::vector<Dataset> shards;
  shards.reserve(static_cast<std::size_t>(nodes));
  for (const auto& b : buckets) shards.push_back(dataset.subset(b));
  return shards;
}

std::vector<Dataset> dirichlet_partition(const Dataset& dataset, int nodes,
                                         double alpha, Rng& rng) {
  CHIRON_CHECK(nodes >= 1);
  CHIRON_CHECK(alpha > 0.0);
  CHIRON_CHECK(dataset.size() >= nodes);
  const std::int64_t classes = dataset.num_classes();
  // Group sample indices by class.
  std::vector<std::vector<int>> by_class(static_cast<std::size_t>(classes));
  for (int i = 0; i < dataset.size(); ++i)
    by_class[static_cast<std::size_t>(dataset.labels()[static_cast<std::size_t>(i)])]
        .push_back(i);
  for (auto& v : by_class) rng.shuffle(v);

  std::vector<std::vector<int>> buckets(static_cast<std::size_t>(nodes));
  std::gamma_distribution<double> gamma(alpha, 1.0);
  for (auto& cls_indices : by_class) {
    if (cls_indices.empty()) continue;
    // Draw node shares ~ Dirichlet(alpha) via normalized gammas.
    std::vector<double> shares(static_cast<std::size_t>(nodes));
    double total = 0.0;
    for (auto& s : shares) {
      s = std::max(gamma(rng.engine()), 1e-12);
      total += s;
    }
    std::size_t cursor = 0;
    for (int node = 0; node < nodes; ++node) {
      const double frac = shares[static_cast<std::size_t>(node)] / total;
      std::size_t take = static_cast<std::size_t>(
          std::floor(frac * static_cast<double>(cls_indices.size())));
      if (node == nodes - 1) take = cls_indices.size() - cursor;
      take = std::min(take, cls_indices.size() - cursor);
      for (std::size_t j = 0; j < take; ++j)
        buckets[static_cast<std::size_t>(node)].push_back(
            cls_indices[cursor + j]);
      cursor += take;
    }
  }
  // Guarantee non-empty shards by stealing from the largest bucket.
  for (std::size_t n = 0; n < buckets.size(); ++n) {
    if (!buckets[n].empty()) continue;
    auto largest = std::max_element(
        buckets.begin(), buckets.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    CHIRON_CHECK(largest->size() >= 2);
    buckets[n].push_back(largest->back());
    largest->pop_back();
  }
  std::vector<Dataset> shards;
  shards.reserve(buckets.size());
  for (const auto& b : buckets) shards.push_back(dataset.subset(b));
  return shards;
}

}  // namespace chiron::data
