#include "data/dataset.h"

#include <algorithm>

#include "common/error.h"

namespace chiron::data {

Dataset::Dataset(Tensor inputs, std::vector<int> labels,
                 std::int64_t num_classes)
    : inputs_(std::move(inputs)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  CHIRON_CHECK(inputs_.rank() >= 2);
  CHIRON_CHECK_MSG(inputs_.dim(0) ==
                       static_cast<std::int64_t>(labels_.size()),
                   "inputs batch " << inputs_.dim(0) << " vs labels "
                                   << labels_.size());
  CHIRON_CHECK(num_classes_ > 0);
  for (int y : labels_)
    CHIRON_CHECK_MSG(y >= 0 && y < num_classes_, "label " << y);
}

tensor::Shape Dataset::sample_shape() const {
  tensor::Shape s(inputs_.shape().begin() + 1, inputs_.shape().end());
  return s;
}

std::int64_t Dataset::sample_elements() const {
  return size() == 0 ? 0 : inputs_.size() / size();
}

Dataset Dataset::subset(const std::vector<int>& indices) const {
  auto [batch, labels] = gather(indices);
  return Dataset(std::move(batch), std::move(labels), num_classes_);
}

std::pair<Tensor, std::vector<int>> Dataset::gather(
    const std::vector<int>& indices) const {
  CHIRON_CHECK(!indices.empty());
  const std::int64_t stride = sample_elements();
  tensor::Shape shape = inputs_.shape();
  shape[0] = static_cast<std::int64_t>(indices.size());
  Tensor batch(shape);
  std::vector<int> labels(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const int idx = indices[i];
    CHIRON_CHECK_MSG(idx >= 0 && idx < size(), "sample index " << idx);
    std::copy_n(inputs_.data() + static_cast<std::ptrdiff_t>(idx) * stride,
                stride,
                batch.data() + static_cast<std::ptrdiff_t>(i) *
                                   static_cast<std::ptrdiff_t>(stride));
    labels[i] = labels_[static_cast<std::size_t>(idx)];
  }
  return {std::move(batch), std::move(labels)};
}

double Dataset::size_bits() const {
  return static_cast<double>(inputs_.size()) * 32.0;
}

}  // namespace chiron::data
