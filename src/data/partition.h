// Federated partitioners: split one training set into per-node shards.
//
// The paper distributes data randomly (IID) across edge nodes; a label-skew
// Dirichlet partitioner is included as an extension hook for non-IID
// experiments.
#pragma once

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace chiron::data {

/// Shuffles and deals samples round-robin into `nodes` shards whose sizes
/// differ by at most one.
std::vector<Dataset> iid_partition(const Dataset& dataset, int nodes,
                                   Rng& rng);

/// Label-skewed partition: for each class, node shares are drawn from a
/// Dirichlet(alpha) distribution. Small alpha → strong skew. Every node is
/// guaranteed at least one sample.
std::vector<Dataset> dirichlet_partition(const Dataset& dataset, int nodes,
                                         double alpha, Rng& rng);

}  // namespace chiron::data
