// Procedural synthetic datasets standing in for MNIST, Fashion-MNIST and
// CIFAR-10 (the evaluation datasets of the paper). See DESIGN.md §3: the
// incentive mechanism consumes only the *accuracy trajectory* of federated
// training, so what matters is that these sets (1) are learnable by real
// SGD on the paper's model architectures, (2) are not trivially separable,
// and (3) are ordered in difficulty MNIST < Fashion < CIFAR.
//
// Each class is a small set of structured prototypes (oriented strokes with
// Gaussian cross-sections); a sample is a randomly chosen prototype under a
// random translation, contrast jitter and additive pixel noise. Difficulty
// is raised by shrinking the angular separation between classes and
// increasing prototype count, shift range and noise.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "data/dataset.h"

namespace chiron::data {

/// Which of the paper's three vision tasks to synthesize.
enum class VisionTask { kMnistLike, kFashionLike, kCifarLike };

const char* task_name(VisionTask task);

/// Image geometry of a task: 28×28×1 for the MNIST-like pair, 32×32×3 for
/// the CIFAR-like task (matching the paper's model input shapes).
struct TaskGeometry {
  std::int64_t channels;
  std::int64_t height;
  std::int64_t width;
};
TaskGeometry task_geometry(VisionTask task);

/// Generates `n` labelled samples of the given task. All randomness comes
/// from `rng`, so train/test splits are made by calling this twice with the
/// same task and different rng states.
Dataset make_vision_dataset(VisionTask task, std::int64_t n, Rng& rng);

/// Low-dimensional Gaussian-blob classification set: k class centers on a
/// scaled simplex in d dimensions, samples = center + noise. Used by fast
/// unit tests and the quick real-training environment mode.
Dataset make_gaussian_blobs(std::int64_t n, std::int64_t dims,
                            std::int64_t classes, double noise, Rng& rng);

}  // namespace chiron::data
