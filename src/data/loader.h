// Mini-batch iteration over a Dataset with per-epoch shuffling.
#pragma once

#include <utility>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace chiron::data {

/// Yields shuffled mini-batches; the final batch of an epoch may be short.
class BatchLoader {
 public:
  /// `dataset` must outlive the loader.
  BatchLoader(const Dataset& dataset, std::int64_t batch_size, Rng& rng);

  /// Starts a new epoch (reshuffles).
  void reset();

  /// True when the current epoch has more batches.
  bool has_next() const;

  /// Next mini-batch (inputs, labels). Requires has_next().
  std::pair<Tensor, std::vector<int>> next();

  std::int64_t batches_per_epoch() const;

 private:
  const Dataset& dataset_;
  std::int64_t batch_size_;
  Rng& rng_;
  std::vector<int> order_;
  std::size_t cursor_ = 0;
};

}  // namespace chiron::data
