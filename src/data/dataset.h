// In-memory labelled dataset: a batch-major tensor of inputs plus integer
// class labels. Images use NCHW; feature-vector datasets use (N, D).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace chiron::data {

using tensor::Tensor;

class Dataset {
 public:
  Dataset() = default;

  /// inputs: (N, ...) with N == labels.size(); labels in [0, num_classes).
  Dataset(Tensor inputs, std::vector<int> labels, std::int64_t num_classes);

  std::int64_t size() const { return static_cast<std::int64_t>(labels_.size()); }
  std::int64_t num_classes() const { return num_classes_; }
  const Tensor& inputs() const { return inputs_; }
  const std::vector<int>& labels() const { return labels_; }

  /// Shape of one sample (inputs shape without the batch dimension).
  tensor::Shape sample_shape() const;

  /// Number of scalars in one sample.
  std::int64_t sample_elements() const;

  /// Copies the selected rows into a new dataset (indices may repeat).
  Dataset subset(const std::vector<int>& indices) const;

  /// Gathers samples `indices` into a batch tensor + labels.
  std::pair<Tensor, std::vector<int>> gather(
      const std::vector<int>& indices) const;

  /// Size of the dataset in bits, assuming float32 inputs. This is the
  /// `d_i` quantity of the paper's computation model (bits processed per
  /// local epoch).
  double size_bits() const;

 private:
  Tensor inputs_;
  std::vector<int> labels_;
  std::int64_t num_classes_ = 0;
};

}  // namespace chiron::data
