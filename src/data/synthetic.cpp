#include "data/synthetic.h"

#include <cmath>
#include <vector>

#include "common/error.h"

namespace chiron::data {

namespace {

constexpr std::int64_t kClasses = 10;

/// Difficulty knobs per task (see header).
struct TaskParams {
  int prototypes_per_class;
  double angle_jitter;   // radians of per-prototype angular offset
  int max_shift;         // translation range in pixels (±)
  double pixel_noise;    // additive Gaussian stddev
  double stroke_sigma;   // stroke cross-section width
  bool color;            // per-channel weighting (CIFAR-like)
};

TaskParams task_params(VisionTask task) {
  switch (task) {
    case VisionTask::kMnistLike:
      return {1, 0.0, 2, 0.15, 1.6, false};
    case VisionTask::kFashionLike:
      return {2, 0.12, 3, 0.30, 2.2, false};
    case VisionTask::kCifarLike:
      return {3, 0.16, 4, 0.40, 2.8, true};
  }
  CHIRON_CHECK_MSG(false, "unknown task");
  return {};
}

/// Renders one prototype: two crossing strokes whose angles encode the
/// class, with Gaussian intensity falloff from each stroke's center line.
/// `phase` differentiates prototypes within a class.
std::vector<float> render_prototype(std::int64_t h, std::int64_t w, int cls,
                                    int proto_idx, const TaskParams& tp,
                                    Rng& rng) {
  std::vector<float> img(static_cast<std::size_t>(h * w), 0.f);
  const double base = static_cast<double>(cls) * M_PI /
                      static_cast<double>(kClasses);
  const double jitter = tp.angle_jitter * (proto_idx - (tp.prototypes_per_class - 1) * 0.5);
  const double theta1 = base + jitter + rng.normal(0.0, 0.02);
  // Second stroke angle also class-dependent but with a different stride so
  // that class identity is encoded redundantly.
  const double theta2 =
      M_PI / 2.0 + base * 0.7 - jitter + rng.normal(0.0, 0.02);
  const double cy = (static_cast<double>(h) - 1.0) / 2.0;
  const double cx = (static_cast<double>(w) - 1.0) / 2.0;
  // Per-prototype offset of the second stroke makes prototypes distinct.
  const double off = 0.18 * static_cast<double>(w) *
                     (proto_idx % 2 == 0 ? 1.0 : -1.0) *
                     (proto_idx > 0 ? 1.0 : 0.0);
  const double s2 = 2.0 * tp.stroke_sigma * tp.stroke_sigma;
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const double dy = static_cast<double>(y) - cy;
      const double dx = static_cast<double>(x) - cx;
      // Perpendicular distance to each stroke's line through the center.
      const double d1 = std::fabs(dx * std::sin(theta1) - dy * std::cos(theta1));
      const double d2 = std::fabs((dx - off) * std::sin(theta2) -
                                  dy * std::cos(theta2));
      const double v = std::exp(-d1 * d1 / s2) + 0.8 * std::exp(-d2 * d2 / s2);
      img[static_cast<std::size_t>(y * w + x)] = static_cast<float>(v);
    }
  }
  return img;
}

}  // namespace

const char* task_name(VisionTask task) {
  switch (task) {
    case VisionTask::kMnistLike: return "mnist";
    case VisionTask::kFashionLike: return "fashion";
    case VisionTask::kCifarLike: return "cifar";
  }
  return "?";
}

TaskGeometry task_geometry(VisionTask task) {
  if (task == VisionTask::kCifarLike) return {3, 32, 32};
  return {1, 28, 28};
}

Dataset make_vision_dataset(VisionTask task, std::int64_t n, Rng& rng) {
  CHIRON_CHECK(n > 0);
  const TaskGeometry g = task_geometry(task);
  const TaskParams tp = task_params(task);

  // Prototypes are derived from a task-specific deterministic stream so
  // that train and test splits share class structure regardless of how
  // many samples each draws.
  Rng proto_rng(0xC41A0000u ^ static_cast<std::uint64_t>(task));
  std::vector<std::vector<float>> protos;
  protos.reserve(static_cast<std::size_t>(kClasses * tp.prototypes_per_class));
  for (int cls = 0; cls < kClasses; ++cls)
    for (int p = 0; p < tp.prototypes_per_class; ++p)
      protos.push_back(
          render_prototype(g.height, g.width, cls, p, tp, proto_rng));

  Tensor images({n, g.channels, g.height, g.width});
  std::vector<int> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const int cls = rng.randint(0, static_cast<int>(kClasses) - 1);
    const int p = rng.randint(0, tp.prototypes_per_class - 1);
    const auto& proto =
        protos[static_cast<std::size_t>(cls * tp.prototypes_per_class + p)];
    labels[static_cast<std::size_t>(i)] = cls;
    const int sy = rng.randint(-tp.max_shift, tp.max_shift);
    const int sx = rng.randint(-tp.max_shift, tp.max_shift);
    const double contrast = rng.uniform(0.7, 1.3);
    // Per-channel weights: grayscale tasks use 1; the color task modulates
    // channels by class so color carries (noisy) signal too.
    for (std::int64_t c = 0; c < g.channels; ++c) {
      double cw = 1.0;
      if (tp.color) {
        cw = 0.5 + 0.5 * std::sin(1.7 * static_cast<double>(cls) +
                                  2.1 * static_cast<double>(c));
        cw = 0.4 + 0.6 * cw + rng.normal(0.0, 0.05);
      }
      for (std::int64_t y = 0; y < g.height; ++y) {
        for (std::int64_t x = 0; x < g.width; ++x) {
          const std::int64_t py = y - sy;
          const std::int64_t px = x - sx;
          float v = 0.f;
          if (py >= 0 && py < g.height && px >= 0 && px < g.width) {
            v = proto[static_cast<std::size_t>(py * g.width + px)];
          }
          const double noisy =
              contrast * cw * v + rng.normal(0.0, tp.pixel_noise);
          images.at4(i, c, y, x) = static_cast<float>(noisy);
        }
      }
    }
  }
  return Dataset(std::move(images), std::move(labels), kClasses);
}

Dataset make_gaussian_blobs(std::int64_t n, std::int64_t dims,
                            std::int64_t classes, double noise, Rng& rng) {
  CHIRON_CHECK(n > 0 && dims > 0 && classes > 1);
  // Deterministic class centers: unit-ish directions from a fixed stream.
  Rng center_rng(0xB10B5000u ^ static_cast<std::uint64_t>(dims * 131 + classes));
  std::vector<std::vector<float>> centers(
      static_cast<std::size_t>(classes));
  for (auto& c : centers) {
    c.resize(static_cast<std::size_t>(dims));
    for (auto& v : c) v = static_cast<float>(center_rng.normal(0.0, 1.0));
  }
  Tensor x({n, dims});
  std::vector<int> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const int cls = rng.randint(0, static_cast<int>(classes) - 1);
    labels[static_cast<std::size_t>(i)] = cls;
    const auto& c = centers[static_cast<std::size_t>(cls)];
    for (std::int64_t d = 0; d < dims; ++d) {
      x.at2(i, d) =
          c[static_cast<std::size_t>(d)] +
          static_cast<float>(rng.normal(0.0, noise));
    }
  }
  return Dataset(std::move(x), std::move(labels), classes);
}

}  // namespace chiron::data
