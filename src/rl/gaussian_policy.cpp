#include "rl/gaussian_policy.h"

#include <cmath>

#include "common/error.h"
#include "nn/models.h"

namespace chiron::rl {

namespace {
constexpr double kLogSqrt2Pi = 0.9189385332046727;  // log sqrt(2π)
}

GaussianPolicy::GaussianPolicy(std::int64_t obs_dim, std::int64_t act_dim,
                               std::int64_t hidden, Rng& rng,
                               float init_log_std)
    : obs_dim_(obs_dim),
      act_dim_(act_dim),
      net_(nn::make_tanh_mlp(obs_dim, hidden, act_dim, rng)),
      log_std_(Tensor::full({act_dim}, init_log_std)) {
  CHIRON_CHECK(obs_dim > 0 && act_dim > 0 && hidden > 0);
}

std::vector<float> GaussianPolicy::mean(const std::vector<float>& obs) {
  CHIRON_CHECK(static_cast<std::int64_t>(obs.size()) == obs_dim_);
  Tensor x({1, obs_dim_}, std::vector<float>(obs));
  return mean_batch(x).vec();
}

Tensor GaussianPolicy::mean_batch(const Tensor& obs, bool train) {
  CHIRON_CHECK(obs.rank() == 2 && obs.dim(1) == obs_dim_);
  return net_->forward(obs, train);
}

PolicySample GaussianPolicy::sample(const std::vector<float>& obs, Rng& rng) {
  std::vector<float> mu = mean(obs);
  PolicySample s;
  s.action.resize(static_cast<std::size_t>(act_dim_));
  double logp = 0.0;
  for (std::int64_t j = 0; j < act_dim_; ++j) {
    const double sigma = std::exp(log_std_.value[j]);
    const double a = rng.normal(mu[static_cast<std::size_t>(j)], sigma);
    s.action[static_cast<std::size_t>(j)] = static_cast<float>(a);
    const double z = (a - mu[static_cast<std::size_t>(j)]) / sigma;
    logp += -0.5 * z * z - log_std_.value[j] - kLogSqrt2Pi;
  }
  s.log_prob = static_cast<float>(logp);
  return s;
}

std::vector<float> GaussianPolicy::log_prob_batch(const Tensor& obs,
                                                  const Tensor& actions,
                                                  Tensor* out_means) {
  CHIRON_CHECK(obs.rank() == 2 && obs.dim(1) == obs_dim_);
  CHIRON_CHECK(actions.rank() == 2 && actions.dim(1) == act_dim_);
  CHIRON_CHECK(obs.dim(0) == actions.dim(0));
  Tensor mu = mean_batch(obs, /*train=*/true);
  const std::int64_t batch = obs.dim(0);
  std::vector<float> out(static_cast<std::size_t>(batch));
  for (std::int64_t b = 0; b < batch; ++b) {
    double logp = 0.0;
    for (std::int64_t j = 0; j < act_dim_; ++j) {
      const double sigma = std::exp(log_std_.value[j]);
      const double z = (actions.at2(b, j) - mu.at2(b, j)) / sigma;
      logp += -0.5 * z * z - log_std_.value[j] - kLogSqrt2Pi;
    }
    out[static_cast<std::size_t>(b)] = static_cast<float>(logp);
  }
  if (out_means != nullptr) *out_means = mu;
  return out;
}

double GaussianPolicy::entropy() const {
  // H = Σ_j (logσ_j + ½ log(2πe)).
  double h = 0.0;
  for (std::int64_t j = 0; j < act_dim_; ++j)
    h += log_std_.value[j] + kLogSqrt2Pi + 0.5;
  return h;
}

void GaussianPolicy::backward_log_prob(const Tensor& obs,
                                       const Tensor& actions,
                                       const Tensor& means,
                                       const std::vector<float>& dloss_dlogp) {
  const std::int64_t batch = obs.dim(0);
  CHIRON_CHECK(static_cast<std::int64_t>(dloss_dlogp.size()) == batch);
  CHIRON_CHECK(means.rank() == 2 && means.dim(0) == batch &&
               means.dim(1) == act_dim_);
  // dlogp/dμ_j = (a_j − μ_j)/σ_j² ; dlogp/dlogσ_j = z_j² − 1.
  Tensor grad_mu({batch, act_dim_});
  for (std::int64_t b = 0; b < batch; ++b) {
    const float g = dloss_dlogp[static_cast<std::size_t>(b)];
    for (std::int64_t j = 0; j < act_dim_; ++j) {
      const double sigma = std::exp(log_std_.value[j]);
      const double diff = actions.at2(b, j) - means.at2(b, j);
      grad_mu.at2(b, j) = static_cast<float>(g * diff / (sigma * sigma));
      const double z2 = (diff / sigma) * (diff / sigma);
      log_std_.grad[j] += static_cast<float>(g * (z2 - 1.0));
    }
  }
  // Forward state in net_ corresponds to the last log_prob_batch call.
  net_->backward(grad_mu);
}

void GaussianPolicy::add_entropy_grad(float coef) {
  for (std::int64_t j = 0; j < act_dim_; ++j) log_std_.grad[j] += coef;
}

std::vector<Param*> GaussianPolicy::params() {
  std::vector<Param*> p = net_->params();
  p.push_back(&log_std_);
  return p;
}

void GaussianPolicy::clamp_log_std(float lo, float hi) {
  CHIRON_CHECK(lo <= hi);
  for (std::int64_t j = 0; j < act_dim_; ++j) {
    if (log_std_.value[j] < lo) log_std_.value[j] = lo;
    if (log_std_.value[j] > hi) log_std_.value[j] = hi;
  }
}

}  // namespace chiron::rl
