// Proximal Policy Optimization (clipped surrogate) over a GaussianPolicy
// and a ValueNet — the learning algorithm of both Chiron agents and the
// single-agent DRL baseline (paper §V-B).
//
// Following the paper's Algorithm 1, updates run when an episode ends
// (budget exhausted): M optimization epochs over the whole episode batch
// ("the update batch of agent is equal to the step number of each
// episode", §VI-A), then the old policy snapshot is implicitly refreshed
// because the buffer is cleared and new ratios start from the updated
// policy.
#pragma once

#include <memory>

#include "rl/buffer.h"
#include "rl/gaussian_policy.h"
#include "rl/value_net.h"
#include "nn/optim.h"

namespace chiron::rl {

struct PpoConfig {
  std::int64_t obs_dim = 0;
  std::int64_t act_dim = 0;
  std::int64_t hidden = 64;
  double actor_lr = 3e-5;    // paper §VI-A: lr_a = lr_c = 3e-5
  double critic_lr = 3e-5;
  double clip_ratio = 0.2;
  double gamma = 0.95;       // paper §VI-A
  double gae_lambda = 0.95;
  int update_epochs = 10;    // M in Algorithm 1
  double entropy_coef = 1e-3;
  double max_grad_norm = 5.0;
  float init_log_std = -0.5f;
  float min_log_std = -3.0f;
  float max_log_std = 1.0f;
};

/// Result of one action query.
struct ActResult {
  std::vector<float> action;  // raw Gaussian sample
  float log_prob = 0.f;
  float value = 0.f;
};

class PpoAgent {
 public:
  PpoAgent(const PpoConfig& config, Rng& rng);

  /// Samples an action with its log-prob and V(s).
  ActResult act(const std::vector<float>& obs, Rng& rng);

  /// Deterministic (mean) action for evaluation runs.
  std::vector<float> act_mean(const std::vector<float>& obs);

  /// PPO update over a finished episode buffer; the caller clears the
  /// buffer afterwards. Returns the final-epoch mean surrogate objective
  /// (diagnostic).
  double update(RolloutBuffer& buffer);

  /// Multiplies both learning rates (paper: ×0.95 every 20 episodes).
  void decay_lr(double factor);

  const PpoConfig& config() const { return config_; }
  GaussianPolicy& policy() { return policy_; }
  ValueNet& critic() { return critic_; }

 private:
  PpoConfig config_;
  GaussianPolicy policy_;
  ValueNet critic_;
  nn::Adam actor_opt_;
  nn::Adam critic_opt_;
};

}  // namespace chiron::rl
