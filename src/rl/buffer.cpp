#include "rl/buffer.h"

#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace chiron::rl {

RolloutBuffer::RolloutBuffer(std::int64_t obs_dim, std::int64_t act_dim)
    : obs_dim_(obs_dim), act_dim_(act_dim) {
  CHIRON_CHECK(obs_dim_ > 0 && act_dim_ > 0);
}

void RolloutBuffer::add(Transition t) {
  CHIRON_CHECK_MSG(!finished_, "add after finish(); call clear() first");
  CHIRON_CHECK(static_cast<std::int64_t>(t.obs.size()) == obs_dim_);
  CHIRON_CHECK(static_cast<std::int64_t>(t.action.size()) == act_dim_);
  transitions_.push_back(std::move(t));
}

void RolloutBuffer::end_episode(double gamma, double gae_lambda) {
  CHIRON_CHECK(!finished_);
  const std::size_t n = transitions_.size();
  CHIRON_CHECK_MSG(segment_start_ < n, "end_episode() with no transitions");
  advantages_.resize(n, 0.f);
  returns_.resize(n, 0.f);
  log_probs_.resize(n);
  for (std::size_t i = segment_start_; i < n; ++i)
    log_probs_[i] = transitions_[i].log_prob;

  // Terminal episode segment: V(s_T) = 0.
  double gae = 0.0;
  double ret = 0.0;
  for (std::size_t i = n; i-- > segment_start_;) {
    const double next_value =
        (i + 1 < n) ? transitions_[i + 1].value : 0.0;
    const double delta =
        transitions_[i].reward + gamma * next_value - transitions_[i].value;
    gae = delta + gamma * gae_lambda * gae;
    advantages_[i] = static_cast<float>(gae);
    ret = transitions_[i].reward + gamma * ret;
    returns_[i] = static_cast<float>(ret);
  }
  segment_start_ = n;
}

void RolloutBuffer::finalize(bool normalize) {
  CHIRON_CHECK(!finished_);
  CHIRON_CHECK_MSG(!transitions_.empty(), "finalize() on empty buffer");
  CHIRON_CHECK_MSG(segment_start_ == transitions_.size(),
                   "open episode segment; call end_episode() first");
  const std::size_t n = transitions_.size();
  if (normalize && n > 1) {
    RunningStat rs;
    for (float a : advantages_) rs.push(a);
    // Population (n) stddev on purpose: the buffer is the entire
    // population being whitened, not a sample — see stats.h.
    const double std = rs.stddev();
    const double mean = rs.mean();
    if (std > 1e-8) {
      for (auto& a : advantages_)
        a = static_cast<float>((a - mean) / std);
    } else {
      for (auto& a : advantages_) a = static_cast<float>(a - mean);
    }
  }
  finished_ = true;
}

void RolloutBuffer::finish(double gamma, double gae_lambda, bool normalize) {
  if (segment_start_ < transitions_.size()) end_episode(gamma, gae_lambda);
  finalize(normalize);
}

void RolloutBuffer::clear() {
  transitions_.clear();
  log_probs_.clear();
  advantages_.clear();
  returns_.clear();
  segment_start_ = 0;
  finished_ = false;
}

Tensor RolloutBuffer::observations() const {
  const std::int64_t n = static_cast<std::int64_t>(transitions_.size());
  Tensor t({n, obs_dim_});
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < obs_dim_; ++j)
      t.at2(i, j) = transitions_[static_cast<std::size_t>(i)]
                        .obs[static_cast<std::size_t>(j)];
  return t;
}

Tensor RolloutBuffer::actions() const {
  const std::int64_t n = static_cast<std::int64_t>(transitions_.size());
  Tensor t({n, act_dim_});
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < act_dim_; ++j)
      t.at2(i, j) = transitions_[static_cast<std::size_t>(i)]
                        .action[static_cast<std::size_t>(j)];
  return t;
}

}  // namespace chiron::rl
