#include "rl/ppo.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace chiron::rl {

PpoAgent::PpoAgent(const PpoConfig& config, Rng& rng)
    : config_(config),
      policy_(config.obs_dim, config.act_dim, config.hidden, rng,
              config.init_log_std),
      critic_(config.obs_dim, config.hidden, rng),
      actor_opt_(policy_.params(), config.actor_lr),
      critic_opt_(critic_.params(), config.critic_lr) {
  CHIRON_CHECK(config.obs_dim > 0 && config.act_dim > 0);
  CHIRON_CHECK(config.clip_ratio > 0.0);
  CHIRON_CHECK(config.update_epochs >= 1);
}

ActResult PpoAgent::act(const std::vector<float>& obs, Rng& rng) {
  PolicySample s = policy_.sample(obs, rng);
  ActResult r;
  r.action = std::move(s.action);
  r.log_prob = s.log_prob;
  r.value = critic_.value(obs);
  return r;
}

std::vector<float> PpoAgent::act_mean(const std::vector<float>& obs) {
  return policy_.mean(obs);
}

double PpoAgent::update(RolloutBuffer& buffer) {
  CHIRON_CHECK_MSG(buffer.finished(), "buffer must be finish()ed");
  obs::Span update_span(obs::Phase::kPpoUpdate);
  {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
    if (reg.enabled()) {
      static const int updates_id = reg.counter("ppo.updates");
      reg.add(updates_id);
    }
  }
  const Tensor obs = buffer.observations();
  const Tensor actions = buffer.actions();
  const std::vector<float>& logp_old = buffer.log_probs();
  const std::vector<float>& adv = buffer.advantages();
  const std::vector<float>& ret = buffer.returns();
  const std::int64_t batch = obs.dim(0);
  const float clip = static_cast<float>(config_.clip_ratio);

  double last_objective = 0.0;
  for (int epoch = 0; epoch < config_.update_epochs; ++epoch) {
    // ---- Actor: clipped surrogate. ----
    Tensor means;
    std::vector<float> logp = policy_.log_prob_batch(obs, actions, &means);
    std::vector<float> dloss_dlogp(static_cast<std::size_t>(batch), 0.f);
    double objective = 0.0;
    for (std::int64_t b = 0; b < batch; ++b) {
      const std::size_t i = static_cast<std::size_t>(b);
      const float ratio = std::exp(std::clamp(logp[i] - logp_old[i],
                                              -20.f, 20.f));
      const float a = adv[i];
      const float unclipped = ratio * a;
      const float clipped = std::clamp(ratio, 1.f - clip, 1.f + clip) * a;
      objective += std::min(unclipped, clipped);
      // Gradient flows only through the unclipped branch when it is the
      // active minimum (standard PPO subgradient).
      if (unclipped <= clipped) {
        // dL/dlogp = −a·ratio (loss = −objective).
        dloss_dlogp[i] = -a * ratio / static_cast<float>(batch);
      }
    }
    objective /= static_cast<double>(batch);
    last_objective = objective;

    actor_opt_.zero_grad();
    policy_.backward_log_prob(obs, actions, means, dloss_dlogp);
    policy_.add_entropy_grad(static_cast<float>(-config_.entropy_coef));
    nn::clip_grad_norm(policy_.params(), config_.max_grad_norm);
    actor_opt_.step();
    policy_.clamp_log_std(config_.min_log_std, config_.max_log_std);

    // ---- Critic: MSE to discounted returns. ----
    critic_opt_.zero_grad();
    Tensor v = critic_.forward_batch(obs);
    Tensor grad_v({batch, 1});
    for (std::int64_t b = 0; b < batch; ++b) {
      const float err = v.at2(b, 0) - ret[static_cast<std::size_t>(b)];
      grad_v.at2(b, 0) = 2.f * err / static_cast<float>(batch);
    }
    critic_.backward(grad_v);
    nn::clip_grad_norm(critic_.params(), config_.max_grad_norm);
    critic_opt_.step();
  }
  return last_objective;
}

void PpoAgent::decay_lr(double factor) {
  CHIRON_CHECK(factor > 0.0);
  actor_opt_.set_lr(actor_opt_.lr() * factor);
  critic_opt_.set_lr(critic_opt_.lr() * factor);
}

}  // namespace chiron::rl
