// Diagonal-Gaussian stochastic policy with a tanh-MLP mean network and a
// state-independent learned log-std vector (standard PPO parameterization).
//
// The policy samples *raw* (unsquashed) actions; squashing (sigmoid for the
// exterior price scalar, softmax for the inner allocation vector) is part
// of the environment mapping, so PPO ratios are computed in raw space.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/sequential.h"

namespace chiron::rl {

using nn::Param;
using nn::Sequential;
using tensor::Tensor;

struct PolicySample {
  std::vector<float> action;  // raw sample
  float log_prob = 0.f;
};

class GaussianPolicy {
 public:
  /// obs_dim → hidden → hidden → act_dim tanh MLP; log_std initialized to
  /// `init_log_std` for every dimension.
  GaussianPolicy(std::int64_t obs_dim, std::int64_t act_dim,
                 std::int64_t hidden, Rng& rng, float init_log_std = -0.5f);

  std::int64_t obs_dim() const { return obs_dim_; }
  std::int64_t act_dim() const { return act_dim_; }

  /// Mean action for a single observation (deterministic evaluation).
  std::vector<float> mean(const std::vector<float>& obs);

  /// Batched deterministic mean forward: (B, obs_dim) → (B, act_dim).
  /// Row b is bit-identical to mean(row b) — rows flow through the same
  /// fixed-order GEMM reduction independently — which is what lets the
  /// serving micro-batcher coalesce requests without changing any
  /// response byte (pinned by policy_test). `train` keeps backward state
  /// for the PPO update path; serving calls it with the default false.
  Tensor mean_batch(const Tensor& obs, bool train = false);

  /// Samples an action and returns its log density.
  PolicySample sample(const std::vector<float>& obs, Rng& rng);

  /// Log densities of a batch of actions under the current policy.
  /// obs: (B, obs_dim), actions: (B, act_dim); also returns the batch of
  /// means via out_means when non-null (used by the PPO update).
  std::vector<float> log_prob_batch(const Tensor& obs, const Tensor& actions,
                                    Tensor* out_means = nullptr);

  /// Policy entropy (depends only on log_std for a diagonal Gaussian).
  double entropy() const;

  /// Backward pass for the PPO loss: given dL/d(log_prob) per sample and
  /// the batch used in the last log_prob_batch call, accumulates gradients
  /// into the mean network and log_std. Caller must zero grads first.
  void backward_log_prob(const Tensor& obs, const Tensor& actions,
                         const Tensor& means,
                         const std::vector<float>& dloss_dlogp);

  /// Adds `coef` to every log_std gradient (entropy-bonus contribution:
  /// dH/dlogσ_j = 1, so a loss term −c·H contributes −c to each).
  void add_entropy_grad(float coef);

  /// All trainable parameters (mean net + log_std).
  std::vector<Param*> params();

  const Tensor& log_std() const { return log_std_.value; }
  void clamp_log_std(float lo, float hi);

 private:
  std::int64_t obs_dim_;
  std::int64_t act_dim_;
  std::unique_ptr<Sequential> net_;
  Param log_std_;
};

}  // namespace chiron::rl
