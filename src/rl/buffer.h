// On-policy rollout storage with GAE(λ) advantage computation.
//
// Both hierarchical agents (and the single-agent baseline) store one
// episode per buffer, matching the paper's Algorithm 1 which updates when
// the budget runs out and then clears the buffers.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace chiron::rl {

using tensor::Tensor;

/// One environment interaction as seen by a PPO agent.
struct Transition {
  std::vector<float> obs;
  std::vector<float> action;  // raw (pre-squash) policy sample
  float log_prob = 0.f;
  float reward = 0.f;
  float value = 0.f;  // V(s) predicted at acting time
};

class RolloutBuffer {
 public:
  RolloutBuffer(std::int64_t obs_dim, std::int64_t act_dim);

  void add(Transition t);

  /// Closes the current episode segment: computes GAE advantages and
  /// discounted return targets for every transition added since the last
  /// boundary. The segment is treated as terminal (bootstrap value 0),
  /// matching budget-exhaustion termination. A buffer may hold several
  /// episodes; call end_episode() after each, then finalize() once.
  void end_episode(double gamma, double gae_lambda);

  /// Marks the buffer ready for consumption. With `normalize` the
  /// advantages are standardized over the whole batch — appropriate for
  /// large batches, harmful for a single short episode, where re-centering
  /// erases the cross-episode signal that the whole episode was good or
  /// bad (the critic serves as baseline instead).
  void finalize(bool normalize);

  /// Single-episode convenience: end_episode() on any pending transitions,
  /// then finalize(normalize).
  void finish(double gamma, double gae_lambda, bool normalize = true);

  std::size_t size() const { return transitions_.size(); }
  bool finished() const { return finished_; }
  void clear();

  /// Batched views (valid after finish()).
  Tensor observations() const;   // (T, obs_dim)
  Tensor actions() const;        // (T, act_dim)
  const std::vector<float>& log_probs() const { return log_probs_; }
  const std::vector<float>& advantages() const { return advantages_; }
  const std::vector<float>& returns() const { return returns_; }

  std::int64_t obs_dim() const { return obs_dim_; }
  std::int64_t act_dim() const { return act_dim_; }

 private:
  std::int64_t obs_dim_;
  std::int64_t act_dim_;
  std::vector<Transition> transitions_;
  std::vector<float> log_probs_;
  std::vector<float> advantages_;
  std::vector<float> returns_;
  std::size_t segment_start_ = 0;  // first transition of the open episode
  bool finished_ = false;
};

}  // namespace chiron::rl
