// State-value estimator V(s): tanh MLP with scalar output.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/sequential.h"

namespace chiron::rl {

using nn::Param;
using tensor::Tensor;

class ValueNet {
 public:
  ValueNet(std::int64_t obs_dim, std::int64_t hidden, Rng& rng);

  /// V(s) for one observation.
  float value(const std::vector<float>& obs);

  /// Batched forward (B, obs_dim) → (B, 1), keeping backward state.
  Tensor forward_batch(const Tensor& obs);

  /// Batched deterministic eval forward (no training-mode layers). Row b
  /// is bit-identical to value(row b); shared by the serving engine and
  /// pinned by policy_test.
  Tensor value_batch(const Tensor& obs);

  /// Backward from dL/d(output) of the last forward_batch.
  void backward(const Tensor& grad_out);

  std::vector<Param*> params() { return net_->params(); }

 private:
  std::int64_t obs_dim_;
  std::unique_ptr<nn::Sequential> net_;
};

}  // namespace chiron::rl
