#include "rl/value_net.h"

#include "common/error.h"
#include "nn/models.h"

namespace chiron::rl {

ValueNet::ValueNet(std::int64_t obs_dim, std::int64_t hidden, Rng& rng)
    : obs_dim_(obs_dim), net_(nn::make_tanh_mlp(obs_dim, hidden, 1, rng)) {
  CHIRON_CHECK(obs_dim > 0 && hidden > 0);
}

float ValueNet::value(const std::vector<float>& obs) {
  CHIRON_CHECK(static_cast<std::int64_t>(obs.size()) == obs_dim_);
  Tensor x({1, obs_dim_}, std::vector<float>(obs));
  return value_batch(x)[0];
}

Tensor ValueNet::value_batch(const Tensor& obs) {
  CHIRON_CHECK(obs.rank() == 2 && obs.dim(1) == obs_dim_);
  return net_->forward(obs, /*train=*/false);
}

Tensor ValueNet::forward_batch(const Tensor& obs) {
  CHIRON_CHECK(obs.rank() == 2 && obs.dim(1) == obs_dim_);
  return net_->forward(obs, /*train=*/true);
}

void ValueNet::backward(const Tensor& grad_out) { net_->backward(grad_out); }

}  // namespace chiron::rl
