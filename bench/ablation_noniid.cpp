// Extension exhibit: Chiron under non-IID data (Dirichlet label-skew
// shards) with real federated training, and under node churn (partial
// availability). Not a paper figure — the paper assumes IID shards and
// always-online nodes — but these are the conditions a deployed mechanism
// would face, and the mechanism layer should degrade gracefully.
#include <iostream>

#include "common/csv.h"
#include "harness_common.h"

using namespace chiron;

int main(int argc, char** argv) {
  bench::HarnessOptions opt = bench::read_options(argc, argv);
  bench::ObsSession obs_session(opt);
  TableWriter out(std::cout);
  out.header({"scenario", "accuracy", "rounds", "time_efficiency", "spent"});

  struct Scenario {
    const char* name;
    bool noniid;
    double alpha;
    double availability;
  };
  for (const Scenario sc :
       {Scenario{"iid_full_availability", false, 0.5, 1.0},
        Scenario{"dirichlet_0.3", true, 0.3, 1.0},
        Scenario{"availability_0.8", false, 0.5, 0.8},
        Scenario{"dirichlet_0.3_avail_0.8", true, 0.3, 0.8}}) {
    std::cerr << "[ablation_noniid] " << sc.name << "\n";
    core::EnvConfig env_cfg =
        bench::make_market(data::VisionTask::kMnistLike, 5, 80.0, opt);
    // Real federated SGD on the fast blobs substrate so label-skew truly
    // affects the accuracy trajectory.
    env_cfg.backend = core::BackendKind::kRealBlobs;
    env_cfg.samples_per_node = 40;
    env_cfg.test_samples = 120;
    env_cfg.local.epochs = 2;
    env_cfg.local.batch_size = 10;
    env_cfg.local.lr = 0.05;
    env_cfg.noniid = sc.noniid;
    env_cfg.dirichlet_alpha = sc.alpha;
    env_cfg.node_availability = sc.availability;
    core::EdgeLearnEnv env(env_cfg);
    env.set_round_sink(opt.round_sink);
    core::ChironConfig cc = bench::make_chiron_config(opt);
    cc.episodes = std::min(opt.chiron_episodes, 150);  // real training
    core::HierarchicalMechanism mech(env, cc);
    mech.train();
    auto s = mech.evaluate(opt.eval_episodes);
    out.row({sc.name, TableWriter::num(s.final_accuracy, 4),
             std::to_string(s.rounds),
             TableWriter::num(s.mean_time_efficiency, 4),
             TableWriter::num(s.spent, 2)});
  }
  return 0;
}
