// Fault-rate sweep: how the learned mechanism degrades as mid-round
// failures grow. For each fault rate the full Chiron stack is trained and
// evaluated on a market where crash/straggler/corrupt faults fire at that
// per-node per-round rate under a server deadline, with pay-on-delivery
// economics (DESIGN.md "Fault model & tolerance"). Reports accuracy,
// rounds, realized spend, Eqn-(16) time efficiency and delivery counts.
#include <iostream>

#include "common/csv.h"
#include "core/actions.h"
#include "core/env.h"
#include "harness_common.h"

using namespace chiron;

namespace {

/// One evaluation episode with delivery accounting (EpisodeStats does not
/// carry the fault counters; the trace here replays the greedy policy of
/// mech.evaluate and tallies them).
struct FaultTally {
  int delivered = 0;
  int crashed = 0;
  int late = 0;
  int rejected = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::HarnessOptions opt = bench::read_options(argc, argv);
  bench::ObsSession obs_session(opt);
  TableWriter out(std::cout);
  out.header({"fault_rate", "accuracy", "rounds", "spent", "time_efficiency",
              "delivered", "crashed", "late", "rejected"});
  for (double rate : {0.0, 0.1, 0.2, 0.4}) {
    std::cerr << "[fault_sweep] fault_rate=" << rate << "\n";
    core::EnvConfig env_cfg =
        bench::make_market(data::VisionTask::kMnistLike, 5, 80.0, opt);
    env_cfg.faults.crash_prob = rate;
    env_cfg.faults.straggler_prob = rate;
    env_cfg.faults.corrupt_prob = rate / 2;
    env_cfg.faults.persistent_prob = 0.1;
    env_cfg.faults.seed = opt.seed + 40961;
    env_cfg.round_deadline = 150.0;
    core::EdgeLearnEnv env(env_cfg);
    env.set_round_sink(opt.round_sink);
    core::HierarchicalMechanism mech(env, bench::make_chiron_config(opt));
    mech.train();
    auto s = mech.evaluate(opt.eval_episodes);

    // Replay one deterministic episode for the delivery tally.
    FaultTally tally;
    env.reset();
    Rng rng(env_cfg.seed + 17);
    while (!env.done()) {
      auto ext = mech.exterior_agent().act(env.exterior_state(), rng);
      const double p_total =
          core::map_total_price(ext.action[0], env.price_cap());
      auto inner = mech.inner_agent().act(
          {static_cast<float>(p_total / env.price_cap())}, rng);
      auto res = env.step(core::combine_prices(
          p_total, core::map_proportions(inner.action)));
      if (res.aborted) break;
      tally.delivered += res.delivered;
      tally.crashed += res.crashed;
      tally.late += res.late;
      tally.rejected += res.rejected;
    }

    out.row({TableWriter::num(rate, 2), TableWriter::num(s.final_accuracy, 4),
             std::to_string(s.rounds), TableWriter::num(s.spent, 2),
             TableWriter::num(s.mean_time_efficiency, 4),
             std::to_string(tally.delivered), std::to_string(tally.crashed),
             std::to_string(tally.late), std::to_string(tally.rejected)});
  }
  return 0;
}
