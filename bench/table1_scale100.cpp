// Table I — "Performance of Chiron under MNIST with 100 edge nodes":
// budgets η ∈ {140, 220, 300, 380} → final accuracy, completed rounds,
// time efficiency.
#include <iostream>

#include "common/csv.h"
#include "harness_common.h"
#include "runtime/runtime.h"

using namespace chiron;

int main(int argc, char** argv) {
  bench::HarnessOptions opt = bench::read_options(argc, argv);
  bench::ObsSession obs_session(opt);
  std::cerr << "[table1] runtime pool: " << runtime::threads()
            << " threads (CHIRON_THREADS to override)\n";
  const std::vector<double> budgets{140, 220, 300, 380};
  TableWriter out(std::cout);
  out.header({"budget", "accuracy", "rounds", "time_efficiency"});
  for (double budget : budgets) {
    std::cerr << "[table1] budget " << budget << "\n";
    core::EnvConfig env_cfg =
        bench::make_market(data::VisionTask::kMnistLike, 100, budget, opt);
    core::EdgeLearnEnv env(env_cfg);
    env.set_round_sink(opt.round_sink);
    core::HierarchicalMechanism chiron(env, bench::make_chiron_config(opt, 100));
    chiron.train();
    auto s = chiron.evaluate(opt.eval_episodes);
    out.row({TableWriter::num(budget, 0),
             TableWriter::num(s.final_accuracy, 3),
             std::to_string(s.rounds),
             TableWriter::num(100.0 * s.mean_time_efficiency, 1) + "%"});
  }
  return 0;
}
