// Adversary-fraction sweep: how much server utility strategic nodes
// destroy, and how much of it the mechanism defenses buy back.
//
// The full Chiron stack is trained once on the honest market; the same
// policy is then replay-evaluated on markets where a growing fraction of
// nodes misreports costs, free-rides and churns (src/adversary), with the
// defenses (delivered-accuracy audits + clawback, reputation-weighted
// aggregation) off and on. Reports per cell the mean episode server
// utility Σ_k (λΔA − T_k), the mechanism regret against the honest run,
// and — for defended cells — the share of that regret the defenses
// recover. Rows land in BENCH_substrate.json via tools/bench_substrate.sh.
#include <algorithm>
#include <iostream>

#include "common/csv.h"
#include "core/actions.h"
#include "core/env.h"
#include "harness_common.h"

using namespace chiron;

namespace {

struct CellResult {
  double utility = 0.0;  // mean per-episode Σ_k (λΔA − T_k)
  double accuracy = 0.0;
  double rounds = 0.0;
  double spent = 0.0;
  // Totals across the evaluation episodes.
  int flagged = 0;
  double clawed_back = 0.0;
  int freeriding = 0;
  int misreporting = 0;
};

/// Deterministic replay evaluation of the trained policy on one market
/// configuration. The agent RNG is seeded identically per cell, so cells
/// differ only through the market itself — a paired comparison.
CellResult eval_cell(core::HierarchicalMechanism& mech,
                     const core::EnvConfig& cfg, obs::RoundSink* sink,
                     int episodes, std::uint64_t rng_seed) {
  core::EdgeLearnEnv env(cfg);
  env.set_round_sink(sink);
  CellResult r;
  Rng rng(rng_seed);
  for (int e = 0; e < episodes; ++e) {
    env.reset();
    while (!env.done()) {
      auto ext = mech.exterior_agent().act(env.exterior_state(), rng);
      const double p_total =
          core::map_total_price(ext.action[0], env.price_cap());
      auto inner = mech.inner_agent().act(
          {static_cast<float>(p_total / env.price_cap())}, rng);
      auto res = env.step(core::combine_prices(
          p_total, core::map_proportions(inner.action)));
      if (res.aborted) break;
      r.utility += res.raw_exterior_reward;
      r.rounds += 1.0;
      r.flagged += res.flagged;
      r.clawed_back += res.clawed_back;
      r.freeriding += res.freeriding;
      r.misreporting += res.misreporting;
    }
    r.accuracy += env.accuracy();
    r.spent += cfg.budget - env.budget_remaining();
  }
  const double n = static_cast<double>(episodes);
  r.utility /= n;
  r.accuracy /= n;
  r.rounds /= n;
  r.spent /= n;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::HarnessOptions opt = bench::read_options(argc, argv);
  bench::ObsSession obs_session(opt);

  // Train once on the clean honest market; the sweep measures damage and
  // recovery under that fixed policy, so any --adv-*/--defense overrides
  // from the caller are cleared here and reapplied per cell below. Ten
  // nodes give the Bernoulli trait draw enough granularity to separate
  // the sweep's fractions.
  core::EnvConfig honest_cfg =
      bench::make_market(data::VisionTask::kMnistLike, 10, 80.0, opt);
  honest_cfg.adversary = adversary::AdversaryConfig{};
  honest_cfg.adversary.seed = opt.seed + 104729;
  honest_cfg.defense = adversary::DefenseConfig{};
  honest_cfg.defense.seed = opt.seed + 1299709;

  std::cerr << "[adversary_sweep] training on the honest market...\n";
  core::EdgeLearnEnv honest_env(honest_cfg);
  honest_env.set_round_sink(opt.round_sink);
  core::HierarchicalMechanism mech(honest_env, bench::make_chiron_config(opt));
  mech.train();
  const CellResult honest = eval_cell(mech, honest_cfg, opt.round_sink,
                                      opt.eval_episodes, opt.seed + 17);

  // Reserve price calibrated just above the most expensive honest node's
  // participation floor 2(μ + E_com): every honest node clears it, while
  // misreporters inflating μ̂ = f·μ push their *reported* floor over it
  // and price themselves out of the round.
  double honest_floor_cap = 0.0;
  for (const auto& d : honest_env.devices()) {
    const double floor =
        2.0 * (d.reserve_utility + d.comm_energy_rate * d.comm_time);
    honest_floor_cap = std::max(honest_floor_cap, floor);
  }

  TableWriter out(std::cout);
  out.header({"adv_fraction", "defenses", "utility", "regret",
              "recovered_share", "accuracy", "rounds", "spent", "flagged",
              "clawed_back", "freeriding", "misreporting"});
  for (double fraction : {0.0, 0.1, 0.2, 0.4}) {
    double regret_off = 0.0;
    for (int defended = 0; defended <= 1; ++defended) {
      std::cerr << "[adversary_sweep] fraction=" << fraction
                << " defenses=" << (defended ? "on" : "off") << "\n";
      core::EnvConfig cfg = honest_cfg;
      cfg.adversary.fraction = fraction;
      cfg.adversary.misreport_factor = 2.0;
      cfg.adversary.freeride_prob = 0.5;
      cfg.adversary.churn_prob = fraction / 4.0;
      if (defended != 0) {
        cfg.defense.reserve_price = 1.02 * honest_floor_cap;
        cfg.defense.audit_prob = 0.5;
        cfg.defense.audit_tolerance = 1.25;
        cfg.defense.reputation_alpha = 0.1;
      }
      const CellResult cell = eval_cell(mech, cfg, opt.round_sink,
                                        opt.eval_episodes, opt.seed + 17);
      const double regret = honest.utility - cell.utility;
      if (defended == 0) regret_off = regret;
      // Share of the undefended regret the defenses claw back; only
      // meaningful on defended rows with real damage to recover.
      const double recovered =
          (defended != 0 && regret_off > 0.0) ? (regret_off - regret) /
                                                    regret_off
                                              : 0.0;
      out.row({TableWriter::num(fraction, 2), defended ? "on" : "off",
               TableWriter::num(cell.utility, 2),
               TableWriter::num(regret, 2), TableWriter::num(recovered, 4),
               TableWriter::num(cell.accuracy, 4),
               TableWriter::num(cell.rounds, 1),
               TableWriter::num(cell.spent, 2), std::to_string(cell.flagged),
               TableWriter::num(cell.clawed_back, 3),
               std::to_string(cell.freeriding),
               std::to_string(cell.misreporting)});
    }
  }
  return 0;
}
