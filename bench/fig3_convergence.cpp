// Fig. 3 — "Convergence of Chiron under MNIST": average episode reward of
// the hierarchical agent over training, 5 edge nodes. The paper trains for
// 500 episodes on real MNIST; the default here runs real federated SGD on
// the fast blobs task (CHIRON_FIG3_BLOBS=0 / CHIRON_REAL_TRAINING=1 for
// the full synthetic-MNIST CNN), with a reduced episode count
// (CHIRON_EPISODES to override).
#include <cstdlib>
#include <iostream>

#include "common/csv.h"
#include "harness_common.h"

using namespace chiron;

int main(int argc, char** argv) {
  bench::HarnessOptions opt = bench::read_options(argc, argv);
  bench::ObsSession obs_session(opt);
  core::EnvConfig env_cfg =
      bench::make_market(data::VisionTask::kMnistLike, 5, 60.0, opt);
  const char* blobs_env = std::getenv("CHIRON_FIG3_BLOBS");
  const bool use_blobs =
      !opt.real_training &&
      (blobs_env == nullptr || std::string(blobs_env) == "1");
  if (use_blobs) {
    // Real federated SGD, fast substrate: MLP on Gaussian blobs.
    env_cfg.backend = core::BackendKind::kRealBlobs;
    env_cfg.samples_per_node = 40;
    env_cfg.test_samples = 120;
    env_cfg.local.epochs = 3;
    env_cfg.local.batch_size = 10;
    env_cfg.local.lr = 0.05;
  }
  core::EdgeLearnEnv env(env_cfg);
  env.set_round_sink(opt.round_sink);
  core::HierarchicalMechanism chiron(env, bench::make_chiron_config(opt));

  std::cerr << "[fig3] training Chiron for " << opt.chiron_episodes
            << " episodes (backend="
            << (use_blobs ? "real-blobs"
                          : (opt.real_training ? "real-vision" : "surrogate"))
            << ")\n";
  auto episodes = chiron.train();
  auto series = bench::reward_series(episodes);

  TableWriter out(std::cout);
  out.header({"episode", "avg_episode_reward", "rounds", "accuracy",
              "time_efficiency"});
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    out.row({std::to_string(i), TableWriter::num(series[i], 2),
             std::to_string(episodes[i].rounds),
             TableWriter::num(episodes[i].final_accuracy, 4),
             TableWriter::num(episodes[i].mean_time_efficiency, 4)});
  }
  // Paper-shape summary: the late-window reward must exceed the early one.
  const double early = core::mean_raw_reward(episodes, 0, 10);
  const double late =
      core::mean_raw_reward(episodes, episodes.size() - 10, episodes.size());
  std::cerr << "[fig3] early-window reward " << early << " -> late-window "
            << late << (late > early ? "  (rising: OK)" : "  (NOT rising)")
            << "\n";
  return 0;
}
