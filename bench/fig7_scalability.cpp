// Fig. 7 — scalability at 100 edge nodes under MNIST:
//   (a) Chiron's exterior agent converges (reward rises over episodes);
//   (b) the single-agent DRL-based approach fails to converge.
// TSV series: episode → smoothed episode reward per approach.
// `--nodes N` (or CHIRON_NODES) overrides the paper's 100-node market for
// scale studies; --shards/--max-replicas engage the §5.12 scaling paths.
#include <iostream>

#include "common/csv.h"
#include "harness_common.h"
#include "runtime/runtime.h"

using namespace chiron;

int main(int argc, char** argv) {
  bench::HarnessOptions opt = bench::read_options(argc, argv);
  bench::ObsSession obs_session(opt);
  const int nodes = opt.nodes > 0 ? opt.nodes : 100;
  core::EnvConfig env_cfg =
      bench::make_market(data::VisionTask::kMnistLike, nodes, 140.0, opt);

  std::cerr << "[fig7] runtime pool: " << runtime::threads()
            << " threads (CHIRON_THREADS to override)\n";
  std::cerr << "[fig7] training Chiron (" << nodes << " nodes, "
            << opt.chiron_episodes << " episodes)\n";
  core::EdgeLearnEnv env_c(env_cfg);
  env_c.set_round_sink(opt.round_sink);
  core::HierarchicalMechanism chiron(env_c,
                                     bench::make_chiron_config(opt, nodes));
  auto chiron_eps = chiron.train();
  auto chiron_series = bench::reward_series(chiron_eps);

  std::cerr << "[fig7] training DRL-based (" << nodes << " nodes)\n";
  core::EdgeLearnEnv env_d(env_cfg);
  env_d.set_round_sink(opt.round_sink);
  baselines::SingleDrlConfig dc;
  dc.episodes = opt.chiron_episodes;  // same series length as Chiron
  dc.hidden = 64;
  dc.actor_lr = 1e-3;
  dc.critic_lr = 1e-3;
  dc.update_epochs = 6;
  dc.seed = opt.seed + 2;
  baselines::SingleAgentDrlMechanism drl(env_d, dc);
  auto drl_eps = drl.train();
  auto drl_series = bench::reward_series(drl_eps);

  TableWriter out(std::cout);
  out.header({"episode", "chiron_avg_reward", "drl_based_avg_reward"});
  const std::size_t n = std::min(chiron_series.size(), drl_series.size());
  for (std::size_t i = 0; i < n; ++i) {
    out.row({std::to_string(i), TableWriter::num(chiron_series[i], 2),
             TableWriter::num(drl_series[i], 2)});
  }
  // Paper-shape summary: at 100 nodes Chiron sustains a clearly higher
  // final reward than the single-agent baseline, whose reward fails to
  // improve over training (Fig 7(b): "cannot converge").
  const std::size_t tail = std::min<std::size_t>(50, n);
  const double c_final =
      core::mean_raw_reward(chiron_eps, chiron_eps.size() - tail,
                            chiron_eps.size());
  const double d_final =
      core::mean_raw_reward(drl_eps, drl_eps.size() - tail, drl_eps.size());
  const double d_gain =
      d_final - core::mean_raw_reward(drl_eps, 0, tail);
  std::cerr << "[fig7] final avg reward: chiron=" << c_final
            << " drl_based=" << d_final
            << "; drl training gain=" << d_gain << "\n";
  return 0;
}
