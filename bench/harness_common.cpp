#include "harness_common.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "common/error.h"
#include "common/flags.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "runtime/pipeline.h"
#include "runtime/runtime.h"

namespace chiron::bench {

namespace {
int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}
bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::string(v) == "1";
}
std::string env_str(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : std::string();
}
double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}
}  // namespace

HarnessOptions read_options() {
  HarnessOptions opt;
  opt.chiron_episodes = env_int("CHIRON_EPISODES", opt.chiron_episodes);
  opt.drl_episodes = env_int("CHIRON_EPISODES", opt.drl_episodes);
  opt.greedy_episodes =
      env_int("CHIRON_EPISODES", 4 * opt.greedy_episodes) / 4;
  opt.eval_episodes = env_int("CHIRON_EVAL_EPISODES", opt.eval_episodes);
  opt.real_training = env_flag("CHIRON_REAL_TRAINING");
  opt.seed = static_cast<std::uint64_t>(env_int("CHIRON_SEED", 97));
  opt.threads = env_int("CHIRON_THREADS", 0);
  opt.nodes = env_int("CHIRON_NODES", opt.nodes);
  opt.shards = env_int("CHIRON_SHARDS", opt.shards);
  opt.max_replicas = env_int("CHIRON_MAX_REPLICAS", opt.max_replicas);
  opt.round_log = env_str("CHIRON_ROUND_LOG");
  opt.metrics_out = env_str("CHIRON_METRICS_OUT");
  opt.trace_out = env_str("CHIRON_TRACE");
  opt.adv_fraction = env_double("CHIRON_ADV_FRACTION", opt.adv_fraction);
  opt.adv_misreport = env_double("CHIRON_ADV_MISREPORT", opt.adv_misreport);
  opt.adv_freeride = env_double("CHIRON_ADV_FREERIDE", opt.adv_freeride);
  opt.adv_churn = env_double("CHIRON_ADV_CHURN", opt.adv_churn);
  opt.reserve_price = env_double("CHIRON_RESERVE_PRICE", opt.reserve_price);
  opt.audit_prob = env_double("CHIRON_AUDIT_PROB", opt.audit_prob);
  opt.audit_tolerance =
      env_double("CHIRON_AUDIT_TOLERANCE", opt.audit_tolerance);
  opt.reputation_alpha =
      env_double("CHIRON_REPUTATION_ALPHA", opt.reputation_alpha);
  // CHIRON_PIPELINE is parsed inside runtime::pipeline_enabled(); the
  // explicit read here lets the flag override it below.
  opt.pipeline = runtime::pipeline_enabled();
  runtime::set_threads(opt.threads);
  return opt;
}

HarnessOptions read_options(int argc, const char* const* argv) {
  HarnessOptions opt = read_options();
  FlagParser flags(argc, argv);
  if (flags.has("episodes")) {
    const int episodes = flags.get_int("episodes", 0);
    CHIRON_CHECK_MSG(episodes >= 1, "--episodes must be >= 1");
    opt.chiron_episodes = episodes;
    opt.drl_episodes = episodes;
    opt.greedy_episodes = std::max(1, episodes / 4);
  }
  opt.eval_episodes = flags.get_int("eval-episodes", opt.eval_episodes);
  if (flags.has("real-training")) opt.real_training = true;
  opt.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<int>(opt.seed)));
  opt.round_log = flags.get("round-log", opt.round_log);
  opt.metrics_out = flags.get("metrics-out", opt.metrics_out);
  opt.trace_out = flags.get("trace", opt.trace_out);
  if (flags.has("threads")) {
    opt.threads = threads_flag(flags);
    runtime::set_threads(opt.threads);
  }
  if (flags.has("pipeline")) {
    opt.pipeline = true;
    runtime::set_pipeline(true);
  }
  opt.nodes = flags.get_int("nodes", opt.nodes);
  opt.shards = flags.get_int("shards", opt.shards);
  opt.max_replicas = flags.get_int("max-replicas", opt.max_replicas);
  CHIRON_CHECK_MSG(opt.nodes >= 0, "--nodes must be >= 0");
  CHIRON_CHECK_MSG(opt.shards >= 1, "--shards must be >= 1");
  CHIRON_CHECK_MSG(opt.max_replicas >= 0, "--max-replicas must be >= 0");
  opt.adv_fraction = flags.get_double("adv-fraction", opt.adv_fraction);
  opt.adv_misreport = flags.get_double("adv-misreport", opt.adv_misreport);
  opt.adv_freeride = flags.get_double("adv-freeride", opt.adv_freeride);
  opt.adv_churn = flags.get_double("adv-churn", opt.adv_churn);
  opt.reserve_price = flags.get_double("reserve-price", opt.reserve_price);
  opt.audit_prob = flags.get_double("audit-prob", opt.audit_prob);
  opt.audit_tolerance =
      flags.get_double("audit-tolerance", opt.audit_tolerance);
  opt.reputation_alpha =
      flags.get_double("reputation-alpha", opt.reputation_alpha);
  const auto unknown =
      flags.unknown_flags({"episodes", "eval-episodes", "real-training",
                           "seed", "threads", "pipeline", "round-log",
                           "metrics-out",
                           "trace", "nodes", "shards", "max-replicas",
                           "adv-fraction", "adv-misreport",
                           "adv-freeride", "adv-churn", "reserve-price",
                           "audit-prob", "audit-tolerance",
                           "reputation-alpha"});
  CHIRON_CHECK_MSG(unknown.empty(), "unknown flag --" << unknown.front());
  return opt;
}

ObsSession::ObsSession(HarnessOptions& opt)
    : metrics_out_(opt.metrics_out), trace_out_(opt.trace_out) {
  if (!metrics_out_.empty()) {
    obs::MetricsRegistry::instance().reset();
    obs::MetricsRegistry::instance().set_enabled(true);
  }
  if (!trace_out_.empty()) obs::set_tracing(true);
  if (!opt.round_log.empty()) {
    sink_ = obs::make_round_sink(opt.round_log);
    opt.round_sink = sink_.get();
  }
}

ObsSession::~ObsSession() {
  if (!metrics_out_.empty()) {
    obs::MetricsRegistry::instance().set_enabled(false);
    std::ofstream out(metrics_out_, std::ios::trunc);
    if (out.good()) obs::MetricsRegistry::instance().write_json(out);
  }
  if (!trace_out_.empty()) {
    obs::set_tracing(false);
    std::ofstream out(trace_out_, std::ios::trunc);
    if (out.good()) obs::write_trace_jsonl(out);
  }
}

core::EnvConfig make_market(data::VisionTask task, int num_nodes,
                            double budget, const HarnessOptions& opt) {
  core::EnvConfig c;
  c.num_nodes = num_nodes;
  c.task = task;
  c.budget = budget;
  c.seed = opt.seed;
  c.max_rounds = 150;
  c.data_bits_per_node = 5e8 / static_cast<double>(num_nodes);
  c.adversary.fraction = opt.adv_fraction;
  c.adversary.misreport_factor = opt.adv_misreport;
  c.adversary.freeride_prob = opt.adv_freeride;
  c.adversary.churn_prob = opt.adv_churn;
  c.adversary.seed = opt.seed + 104729;  // own stream, like chiron_cli
  c.defense.reserve_price = opt.reserve_price;
  c.defense.audit_prob = opt.audit_prob;
  c.defense.audit_tolerance = opt.audit_tolerance;
  c.defense.reputation_alpha = opt.reputation_alpha;
  c.defense.seed = opt.seed + 1299709;
  c.aggregation_shards = opt.shards;
  c.max_replicas = opt.max_replicas;
  if (opt.real_training) {
    c.backend = core::BackendKind::kRealVision;
    c.samples_per_node = 128;
    c.test_samples = 256;
    c.local.epochs = 5;
    c.local.batch_size = 10;  // paper §VI-A
    c.local.lr = 0.05;
  } else {
    c.backend = core::BackendKind::kSurrogate;
  }
  return c;
}

core::ChironConfig make_chiron_config(const HarnessOptions& opt,
                                      int num_nodes) {
  core::ChironConfig c;
  c.episodes = opt.chiron_episodes;
  c.hidden = 64;
  c.update_epochs = 6;
  c.seed = opt.seed + 1;
  if (num_nodes >= 50) {
    c.gamma = 0.99;
    c.inner_init_log_std = -2.0f;
  }
  return c;
}

std::vector<ApproachResult> compare_approaches(const core::EnvConfig& env_cfg,
                                               const HarnessOptions& opt) {
  std::vector<ApproachResult> out;
  {
    core::EdgeLearnEnv env(env_cfg);
    env.set_round_sink(opt.round_sink);
    core::HierarchicalMechanism chiron(env, make_chiron_config(opt));
    chiron.train();
    out.push_back({"chiron", chiron.evaluate(opt.eval_episodes)});
  }
  {
    core::EdgeLearnEnv env(env_cfg);
    env.set_round_sink(opt.round_sink);
    baselines::SingleDrlConfig dc;
    dc.episodes = opt.drl_episodes;
    dc.hidden = 64;
    dc.actor_lr = 1e-3;
    dc.critic_lr = 1e-3;
    dc.update_epochs = 6;
    dc.seed = opt.seed + 2;
    baselines::SingleAgentDrlMechanism drl(env, dc);
    drl.train();
    out.push_back({"drl_based", drl.evaluate(opt.eval_episodes)});
  }
  {
    core::EdgeLearnEnv env(env_cfg);
    env.set_round_sink(opt.round_sink);
    baselines::GreedyConfig gc;
    gc.episodes = opt.greedy_episodes;
    gc.seed = opt.seed + 3;
    baselines::GreedyMechanism greedy(env, gc);
    greedy.train();
    out.push_back({"greedy", greedy.evaluate(opt.eval_episodes)});
  }
  return out;
}

std::vector<double> reward_series(
    const std::vector<core::EpisodeStats>& eps) {
  std::vector<double> raw;
  raw.reserve(eps.size());
  for (const auto& e : eps) raw.push_back(e.raw_reward_sum);
  return moving_average(raw, 10);
}

}  // namespace chiron::bench
