#include "harness_common.h"

#include <cstdlib>

#include "common/stats.h"
#include "runtime/runtime.h"

namespace chiron::bench {

namespace {
int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}
bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::string(v) == "1";
}
}  // namespace

HarnessOptions read_options() {
  HarnessOptions opt;
  opt.chiron_episodes = env_int("CHIRON_EPISODES", opt.chiron_episodes);
  opt.drl_episodes = env_int("CHIRON_EPISODES", opt.drl_episodes);
  opt.greedy_episodes =
      env_int("CHIRON_EPISODES", 4 * opt.greedy_episodes) / 4;
  opt.eval_episodes = env_int("CHIRON_EVAL_EPISODES", opt.eval_episodes);
  opt.real_training = env_flag("CHIRON_REAL_TRAINING");
  opt.seed = static_cast<std::uint64_t>(env_int("CHIRON_SEED", 97));
  opt.threads = env_int("CHIRON_THREADS", 0);
  runtime::set_threads(opt.threads);
  return opt;
}

core::EnvConfig make_market(data::VisionTask task, int num_nodes,
                            double budget, const HarnessOptions& opt) {
  core::EnvConfig c;
  c.num_nodes = num_nodes;
  c.task = task;
  c.budget = budget;
  c.seed = opt.seed;
  c.max_rounds = 150;
  c.data_bits_per_node = 5e8 / static_cast<double>(num_nodes);
  if (opt.real_training) {
    c.backend = core::BackendKind::kRealVision;
    c.samples_per_node = 128;
    c.test_samples = 256;
    c.local.epochs = 5;
    c.local.batch_size = 10;  // paper §VI-A
    c.local.lr = 0.05;
  } else {
    c.backend = core::BackendKind::kSurrogate;
  }
  return c;
}

core::ChironConfig make_chiron_config(const HarnessOptions& opt,
                                      int num_nodes) {
  core::ChironConfig c;
  c.episodes = opt.chiron_episodes;
  c.hidden = 64;
  c.update_epochs = 6;
  c.seed = opt.seed + 1;
  if (num_nodes >= 50) {
    c.gamma = 0.99;
    c.inner_init_log_std = -2.0f;
  }
  return c;
}

std::vector<ApproachResult> compare_approaches(const core::EnvConfig& env_cfg,
                                               const HarnessOptions& opt) {
  std::vector<ApproachResult> out;
  {
    core::EdgeLearnEnv env(env_cfg);
    core::HierarchicalMechanism chiron(env, make_chiron_config(opt));
    chiron.train();
    out.push_back({"chiron", chiron.evaluate(opt.eval_episodes)});
  }
  {
    core::EdgeLearnEnv env(env_cfg);
    baselines::SingleDrlConfig dc;
    dc.episodes = opt.drl_episodes;
    dc.hidden = 64;
    dc.actor_lr = 1e-3;
    dc.critic_lr = 1e-3;
    dc.update_epochs = 6;
    dc.seed = opt.seed + 2;
    baselines::SingleAgentDrlMechanism drl(env, dc);
    drl.train();
    out.push_back({"drl_based", drl.evaluate(opt.eval_episodes)});
  }
  {
    core::EdgeLearnEnv env(env_cfg);
    baselines::GreedyConfig gc;
    gc.episodes = opt.greedy_episodes;
    gc.seed = opt.seed + 3;
    baselines::GreedyMechanism greedy(env, gc);
    greedy.train();
    out.push_back({"greedy", greedy.evaluate(opt.eval_episodes)});
  }
  return out;
}

std::vector<double> reward_series(
    const std::vector<core::EpisodeStats>& eps) {
  std::vector<double> raw;
  raw.reserve(eps.size());
  for (const auto& e : eps) raw.push_back(e.raw_reward_sum);
  return moving_average(raw, 10);
}

}  // namespace chiron::bench
