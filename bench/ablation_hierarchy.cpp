// Ablation (DESIGN.md §5.1): value of the hierarchy's inner agent.
// Compares full Chiron, Chiron with the Lemma-1 equal-time oracle inner
// (upper bound on what the inner agent can learn), Chiron with a uniform
// split (no inner agent), and the complete-information static-pricing
// benchmark of §IV (no learning at all, full knowledge of the market).
#include <iostream>

#include "baselines/static_oracle.h"
#include "common/csv.h"
#include "harness_common.h"

using namespace chiron;

int main(int argc, char** argv) {
  bench::HarnessOptions opt = bench::read_options(argc, argv);
  bench::ObsSession obs_session(opt);
  core::EnvConfig env_cfg =
      bench::make_market(data::VisionTask::kMnistLike, 5, 80.0, opt);
  TableWriter out(std::cout);
  out.header({"variant", "accuracy", "rounds", "time_efficiency",
              "avg_episode_reward"});
  struct Variant {
    const char* name;
    bool oracle;
    bool uniform;
  };
  for (const Variant v : {Variant{"learned_inner", false, false},
                          Variant{"oracle_inner", true, false},
                          Variant{"uniform_inner", false, true}}) {
    std::cerr << "[ablation_hierarchy] " << v.name << "\n";
    core::EdgeLearnEnv env(env_cfg);
    env.set_round_sink(opt.round_sink);
    core::ChironConfig cc = bench::make_chiron_config(opt);
    cc.oracle_inner = v.oracle;
    cc.uniform_inner = v.uniform;
    core::HierarchicalMechanism mech(env, cc);
    auto eps = mech.train();
    auto s = mech.evaluate(opt.eval_episodes);
    out.row({v.name, TableWriter::num(s.final_accuracy, 4),
             std::to_string(s.rounds),
             TableWriter::num(s.mean_time_efficiency, 4),
             TableWriter::num(core::mean_raw_reward(eps, eps.size() - 10,
                                                    eps.size()),
                              1)});
  }
  {
    std::cerr << "[ablation_hierarchy] static_oracle\n";
    core::EdgeLearnEnv env(env_cfg);
    env.set_round_sink(opt.round_sink);
    baselines::StaticOracleMechanism oracle(env, {});
    oracle.search();
    auto s = oracle.evaluate(opt.eval_episodes);
    out.row({"static_oracle_fullinfo", TableWriter::num(s.final_accuracy, 4),
             std::to_string(s.rounds),
             TableWriter::num(s.mean_time_efficiency, 4),
             TableWriter::num(s.raw_reward_sum, 1)});
  }
  return 0;
}
