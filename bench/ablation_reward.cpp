// Ablation (DESIGN.md §5.2): exterior reward form. The default weights λ
// on the accuracy term only (consistent with the server utility, Eqn 9);
// the literal Eqn (14) also multiplies the time term by λ, which makes the
// time penalty dwarf any accuracy gain at λ = 2000.
#include <iostream>

#include "common/csv.h"
#include "harness_common.h"

using namespace chiron;

int main(int argc, char** argv) {
  bench::HarnessOptions opt = bench::read_options(argc, argv);
  bench::ObsSession obs_session(opt);
  TableWriter out(std::cout);
  out.header({"reward_form", "accuracy", "rounds", "time_efficiency",
              "total_time"});
  for (bool lambda_on_time : {false, true}) {
    std::cerr << "[ablation_reward] lambda_on_time="
              << (lambda_on_time ? "1" : "0") << "\n";
    core::EnvConfig env_cfg =
        bench::make_market(data::VisionTask::kMnistLike, 5, 80.0, opt);
    env_cfg.lambda_on_time = lambda_on_time;
    core::EdgeLearnEnv env(env_cfg);
    env.set_round_sink(opt.round_sink);
    core::HierarchicalMechanism mech(env, bench::make_chiron_config(opt));
    mech.train();
    auto s = mech.evaluate(opt.eval_episodes);
    out.row({lambda_on_time ? "eqn14_literal" : "eqn9_consistent",
             TableWriter::num(s.final_accuracy, 4),
             std::to_string(s.rounds),
             TableWriter::num(s.mean_time_efficiency, 4),
             TableWriter::num(s.total_time, 1)});
  }
  return 0;
}
