// Shared configuration and runners for the experiment harnesses.
//
// Every harness reproduces one exhibit of the paper's evaluation (§VI).
// Scale knobs come from the environment so the full paper-scale runs are a
// variable away:
//   CHIRON_EPISODES       override DRL training episodes (default: fast)
//   CHIRON_EVAL_EPISODES  evaluation episodes to average (default 5)
//   CHIRON_REAL_TRAINING  "1" → real federated CNN training backend
//                         (paper §VI-A) instead of the calibrated
//                         surrogate curve; see DESIGN.md §3
//   CHIRON_SEED           base RNG seed (default 97)
//   CHIRON_THREADS        runtime pool size; 0 or unset → all hardware
//                         threads (results are identical either way —
//                         see DESIGN.md "Runtime & threading model")
//   CHIRON_PIPELINE       "1" → double-buffered round pipeline (overlap
//                         eval + PPO update with training; DESIGN.md
//                         §5.14); byte-identical outputs, faster rounds
//   CHIRON_ROUND_LOG      path for the structured round log (.jsonl or
//                         .csv; see DESIGN.md §5.9)
//   CHIRON_METRICS_OUT    path for the end-of-run metrics JSON snapshot
//   CHIRON_TRACE          path for the span trace (JSONL)
//   CHIRON_ADV_FRACTION / CHIRON_ADV_MISREPORT / CHIRON_ADV_FREERIDE /
//   CHIRON_ADV_CHURN      adversarial-market knobs (DESIGN.md §5.11)
//   CHIRON_RESERVE_PRICE / CHIRON_AUDIT_PROB / CHIRON_AUDIT_TOLERANCE /
//   CHIRON_REPUTATION_ALPHA  mechanism defenses; all zero/off by default
//   CHIRON_NODES          market size override for harnesses that take one
//                         (0 or unset = harness default)
//   CHIRON_SHARDS / CHIRON_MAX_REPLICAS  scaling knobs (DESIGN.md §5.12):
//                         aggregation tree fan-in and the lightweight-node
//                         replica budget
//
// Each harness also accepts the equivalent command-line flags
// (--round-log, --metrics-out, --trace, --threads, --pipeline, --seed,
// --episodes, --nodes, --shards, --max-replicas,
// --adv-fraction, --adv-misreport, --adv-freeride, --adv-churn,
// --reserve-price, --audit-prob, --audit-tolerance, --reputation-alpha),
// which take precedence over the environment.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/greedy.h"
#include "baselines/single_drl.h"
#include "core/mechanism.h"
#include "obs/round_log.h"

namespace chiron::bench {

struct HarnessOptions {
  int chiron_episodes = 600;
  int drl_episodes = 200;
  int greedy_episodes = 60;
  int eval_episodes = 5;
  bool real_training = false;
  std::uint64_t seed = 97;
  int threads = 0;  // 0 = auto (hardware concurrency)
  /// Double-buffered round pipeline (DESIGN.md §5.14): overlap round k-1's
  /// evaluation and the batch PPO update with round k's training. Results
  /// are byte-identical on or off; this is a wall-clock knob only.
  bool pipeline = false;
  // Market-size override for harnesses with a scalable node count
  // (fig7_scalability, scale sweeps); 0 = keep the harness default.
  int nodes = 0;
  // Scaling knobs (DESIGN.md §5.12), applied to every market make_market
  // builds. Defaults keep the flat legacy paths byte-identical.
  int shards = 1;        // aggregation tree fan-in (real backends)
  int max_replicas = 0;  // lightweight-node replica budget; 0 = all
  // Observability outputs; empty = off (and zero overhead, DESIGN.md §5.9).
  std::string round_log;
  std::string metrics_out;
  std::string trace_out;
  // Adversarial-market knobs (src/adversary; DESIGN.md §5.11). Applied to
  // every market make_market builds; all zero/off by default so existing
  // harness outputs stay byte-identical.
  double adv_fraction = 0.0;
  double adv_misreport = 1.0;
  double adv_freeride = 0.0;
  double adv_churn = 0.0;
  double reserve_price = 0.0;
  double audit_prob = 0.0;
  double audit_tolerance = 1.25;
  double reputation_alpha = 0.0;
  // Attached to every env the harness builds (set by ObsSession).
  obs::RoundSink* round_sink = nullptr;
};

/// Reads the CHIRON_* environment overrides on top of the defaults and
/// sizes the runtime pool (runtime::set_threads) from CHIRON_THREADS so
/// every harness runs on the pool.
HarnessOptions read_options();

/// read_options() plus command-line flags, which win over the
/// environment: --episodes, --eval-episodes, --real-training, --seed,
/// --threads, --round-log, --metrics-out, --trace. Unknown flags are a
/// hard error so typos don't silently fall back to defaults.
HarnessOptions read_options(int argc, const char* const* argv);

/// RAII scope for a harness run's observability: enables the metrics
/// registry / span tracing when the matching output paths are set, opens
/// the round sink and points opt.round_sink at it, and on destruction
/// writes the metrics snapshot and trace files and disables everything
/// again. Declare one right after read_options() and keep it alive for
/// the whole run.
class ObsSession {
 public:
  explicit ObsSession(HarnessOptions& opt);
  ~ObsSession();
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

 private:
  std::unique_ptr<obs::RoundSink> sink_;
  std::string metrics_out_;
  std::string trace_out_;
};

/// Market (environment) for an N-node experiment on one vision task. A
/// fixed data corpus (5e8 bits ≈ 20k MNIST images) is split evenly across
/// nodes, so per-node compute shrinks as N grows, as in the paper's
/// scale-out experiment. The CIFAR-like task's extra difficulty
/// lives in its slower learning curve and larger budget range ("this
/// leads to different budget constraints", §VI-B).
core::EnvConfig make_market(data::VisionTask task, int num_nodes,
                            double budget, const HarnessOptions& opt);

/// Chiron mechanism config tuned for the reduced-episode regime. At scale
/// (N ≥ 50) episodes are longer and allocation noise hits participation
/// floors harder, so the exterior credit horizon is lengthened (γ 0.99)
/// and the inner exploration noise lowered.
core::ChironConfig make_chiron_config(const HarnessOptions& opt,
                                      int num_nodes = 5);

/// Approach rows of the comparison figures.
struct ApproachResult {
  std::string name;
  core::EpisodeStats stats;
};

/// Trains and evaluates all three approaches on identical markets.
std::vector<ApproachResult> compare_approaches(const core::EnvConfig& env_cfg,
                                               const HarnessOptions& opt);

/// Smoothed per-episode reward series (window 10) for convergence plots.
std::vector<double> reward_series(const std::vector<core::EpisodeStats>& eps);

}  // namespace chiron::bench
