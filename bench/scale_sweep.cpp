// Large-N round throughput sweep (google-benchmark): the perf exhibit of
// the §5.12 scaling substrate, recorded into BENCH_substrate.json by
// tools/bench_substrate.sh.
//
// Two pairs of benchmarks, each reporting nodes/sec:
//   BM_EconRoundNaive / BM_EconRoundPlane — one pricing round over N
//     devices via the scalar per-node path (sysmodel::run_round, fresh
//     AoS allocation every round) vs the SoA economics plane's batched
//     column passes (allocation-free steady state).
//   BM_FedRoundFull / BM_FedRoundScaled — one federated blobs round where
//     every node materializes a replica and trains (the pre-§5.12 path
//     that capped experiments near N=100) vs the scaled round: a
//     64-replica trainer subset, sampled lightweight gradient probes, and
//     uploads streamed through a 16-shard aggregation tree. The
//     acceptance ratio (scaled ≥ 100× full at N=10k) is computed by
//     tools/bench_reduce.py from the nodes_per_sec counters.
//
// BM_FedRoundScaled/100000 is the "100k-node round end to end" check:
// economics at this scale lives in BM_EconRoundPlane/100000; this one
// runs the federated half (training, probes, shard tree, evaluation)
// over 100k participants.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "core/env.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/federation.h"
#include "nn/models.h"
#include "sysmodel/economics.h"
#include "sysmodel/plane.h"

using namespace chiron;

namespace {

// A paper-§VI-A market of N devices with the fixed 5e8-bit corpus split
// evenly, priced at half of each node's saturation price — a mid-range
// posted price where participation is partial and the reserve gate,
// clamp and interior branches all occur.
struct Market {
  std::vector<sysmodel::DeviceProfile> devices;
  std::vector<double> prices;
};

Market make_scale_market(int n) {
  Rng rng(11);
  Market m;
  m.devices = sysmodel::sample_devices(sysmodel::DevicePopulation{}, n,
                                       5e8 / static_cast<double>(n), rng);
  m.prices.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    m.prices[static_cast<std::size_t>(i)] =
        0.5 * sysmodel::saturation_price(m.devices[static_cast<std::size_t>(i)],
                                         /*local_epochs=*/5);
  }
  return m;
}

// Blobs federation sized so one full round at N=10k finishes in benchmark
// time on one core while local training still dominates a replica's round
// cost (5 epochs × 8 batches of 8 over 64 samples per node).
fl::FederationConfig scale_fed_config(int n) {
  fl::FederationConfig cfg;
  cfg.num_nodes = n;
  cfg.local.epochs = 5;
  cfg.local.batch_size = 8;
  cfg.local.lr = 0.05;
  cfg.eval_batch_size = 64;
  return cfg;
}

std::unique_ptr<fl::Federation> make_scale_federation(
    fl::FederationConfig cfg) {
  constexpr int kSamplesPerNode = 64;
  constexpr std::int64_t kDims = 8;
  constexpr std::int64_t kClasses = 4;
  Rng rng(23);
  data::Dataset train = data::make_gaussian_blobs(
      static_cast<std::int64_t>(cfg.num_nodes) * kSamplesPerNode, kDims,
      kClasses, 0.9, rng);
  data::Dataset test =
      data::make_gaussian_blobs(128, kDims, kClasses, 0.9, rng);
  const fl::ModelFactory factory = [](Rng& r) {
    return nn::make_mlp_classifier(kDims, 16, kClasses, r);
  };
  auto shards = data::iid_partition(train, cfg.num_nodes, rng);
  return std::make_unique<fl::Federation>(cfg, factory, std::move(shards),
                                          std::move(test), rng);
}

void set_nodes_per_sec(benchmark::State& state, std::int64_t nodes) {
  const double total =
      static_cast<double>(state.iterations()) * static_cast<double>(nodes);
  state.counters["nodes_per_sec"] =
      benchmark::Counter(total, benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() * nodes);
}

}  // namespace

// The pre-§5.12 economics path: per-node best_response into a freshly
// allocated AoS vector, then the scalar aggregation walk.
static void BM_EconRoundNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Market m = make_scale_market(n);
  for (auto _ : state) {
    auto out = sysmodel::run_round(m.devices, m.prices, /*local_epochs=*/5);
    benchmark::DoNotOptimize(out.time_efficiency);
  }
  set_nodes_per_sec(state, n);
}
BENCHMARK(BM_EconRoundNaive)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

// The SoA plane: batched best response + fixed-chunk aggregation over a
// reused DecisionBatch — the allocation-free steady state of env.step.
static void BM_EconRoundPlane(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Market m = make_scale_market(n);
  const sysmodel::EconomicsPlane plane(m.devices, /*local_epochs=*/5);
  sysmodel::DecisionBatch batch;
  for (auto _ : state) {
    plane.best_response_batch(m.prices, batch);
    auto agg = plane.aggregate_round(batch);
    benchmark::DoNotOptimize(agg.time_efficiency);
  }
  set_nodes_per_sec(state, n);
}
BENCHMARK(BM_EconRoundPlane)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

// Every node holds a replica and locally trains — the flat path whose
// O(N · local_train) round cost is what capped N near 100.
static void BM_FedRoundFull(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto fed = make_scale_federation(scale_fed_config(n));
  std::vector<int> everyone(static_cast<std::size_t>(n));
  std::iota(everyone.begin(), everyone.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fed->run_round(everyone));
  }
  set_nodes_per_sec(state, n);
}
BENCHMARK(BM_FedRoundFull)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// The §5.12 scaled round: 64 trainer replicas, lightweight probes capped
// at the probe_sample default, uploads streamed through 16 shards.
static void BM_FedRoundScaled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  fl::FederationConfig cfg = scale_fed_config(n);
  cfg.max_replicas = 64;
  cfg.aggregation_shards = 16;
  auto fed = make_scale_federation(std::move(cfg));
  std::vector<int> everyone(static_cast<std::size_t>(n));
  std::iota(everyone.begin(), everyone.end(), 0);
  const std::vector<fl::RoundDelivery> delivery(everyone.size());
  for (auto _ : state) {
    auto rep = fed->run_round_tolerant(everyone, delivery);
    benchmark::DoNotOptimize(rep.accuracy);
  }
  set_nodes_per_sec(state, n);
}
BENCHMARK(BM_FedRoundScaled)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Full environment step at 100k nodes (surrogate backend): economics
// plane, budget/payment accounting, history ring and state assembly —
// the end-to-end per-round cost a mechanism run pays at this scale.
static void BM_EnvStep100k(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::EnvConfig cfg;
  cfg.num_nodes = n;
  cfg.budget = 1e12;
  cfg.max_rounds = 1 << 30;
  cfg.backend = core::BackendKind::kSurrogate;
  cfg.data_bits_per_node = 5e8 / static_cast<double>(n);
  core::EdgeLearnEnv env(cfg);
  env.reset();
  std::vector<double> prices(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    prices[static_cast<std::size_t>(i)] = 0.5 * env.per_node_price_cap(i);
  for (auto _ : state) {
    auto res = env.step(prices);
    benchmark::DoNotOptimize(res.accuracy);
  }
  set_nodes_per_sec(state, n);
}
BENCHMARK(BM_EnvStep100k)->Arg(100000)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
