// Ablation (DESIGN.md §5.3): history window L in the exterior state
// ("the previous L rounds", §V-A). Larger L gives the exterior agent more
// context on how its pricing changed system behaviour, at the cost of a
// bigger observation.
#include <iostream>

#include "common/csv.h"
#include "harness_common.h"

using namespace chiron;

int main(int argc, char** argv) {
  bench::HarnessOptions opt = bench::read_options(argc, argv);
  bench::ObsSession obs_session(opt);
  TableWriter out(std::cout);
  out.header({"history_L", "state_dim", "accuracy", "rounds",
              "time_efficiency", "avg_episode_reward"});
  for (int L : {1, 2, 4}) {
    std::cerr << "[ablation_history] L=" << L << "\n";
    core::EnvConfig env_cfg =
        bench::make_market(data::VisionTask::kMnistLike, 5, 80.0, opt);
    env_cfg.history = L;
    core::EdgeLearnEnv env(env_cfg);
    env.set_round_sink(opt.round_sink);
    core::HierarchicalMechanism mech(env, bench::make_chiron_config(opt));
    auto eps = mech.train();
    auto s = mech.evaluate(opt.eval_episodes);
    out.row({std::to_string(L), std::to_string(env.exterior_state_dim()),
             TableWriter::num(s.final_accuracy, 4),
             std::to_string(s.rounds),
             TableWriter::num(s.mean_time_efficiency, 4),
             TableWriter::num(core::mean_raw_reward(eps, eps.size() - 10,
                                                    eps.size()),
                              1)});
  }
  return 0;
}
