// Engineering micro-benchmarks (google-benchmark) for the substrate the
// simulator runs on: tensor kernels, the paper's CNN forward/backward,
// one environment step, and one PPO update. Not a paper exhibit — these
// quantify where simulator wall-clock goes.
#include <benchmark/benchmark.h>

#include "core/env.h"
#include "core/mechanism.h"
#include "data/synthetic.h"
#include "fl/federation.h"
#include "nn/loss.h"
#include "nn/models.h"
#include "rl/ppo.h"
#include "runtime/runtime.h"
#include "tensor/ops.h"

using namespace chiron;

static void BM_MatmulSquare(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  auto a = tensor::Tensor::uniform({n, n}, rng);
  auto b = tensor::Tensor::uniform({n, n}, rng);
  for (auto _ : state) {
    auto c = tensor::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulSquare)->Arg(64)->Arg(128)->Arg(256);

static void BM_Im2col(benchmark::State& state) {
  Rng rng(2);
  auto x = tensor::Tensor::uniform({8, 10, 12, 12}, rng);
  tensor::ConvGeom g{10, 12, 12, 5, 1, 0};
  for (auto _ : state) {
    auto cols = tensor::im2col(x, g);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col);

static void BM_MnistCnnForward(benchmark::State& state) {
  Rng rng(3);
  auto net = nn::make_mnist_cnn(rng);
  auto x = tensor::Tensor::uniform({10, 1, 28, 28}, rng);
  for (auto _ : state) {
    auto y = net->forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MnistCnnForward);

static void BM_MnistCnnTrainStep(benchmark::State& state) {
  Rng rng(4);
  auto net = nn::make_mnist_cnn(rng);
  auto x = tensor::Tensor::uniform({10, 1, 28, 28}, rng);
  std::vector<int> labels{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  nn::SoftmaxCrossEntropy loss;
  for (auto _ : state) {
    net->zero_grad();
    loss.forward(net->forward(x, true), labels);
    net->backward(loss.backward());
    benchmark::DoNotOptimize(net->params().front()->grad.data());
  }
}
BENCHMARK(BM_MnistCnnTrainStep);

static void BM_EnvStepSurrogate(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  core::EnvConfig cfg;
  cfg.num_nodes = nodes;
  cfg.budget = 1e12;
  cfg.max_rounds = 1 << 30;
  cfg.backend = core::BackendKind::kSurrogate;
  core::EdgeLearnEnv env(cfg);
  env.reset();
  std::vector<double> prices(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i)
    prices[static_cast<std::size_t>(i)] = 0.5 * env.per_node_price_cap(i);
  for (auto _ : state) {
    auto res = env.step(prices);
    benchmark::DoNotOptimize(res.accuracy);
  }
}
BENCHMARK(BM_EnvStepSurrogate)->Arg(5)->Arg(100);

static void BM_PpoUpdate(benchmark::State& state) {
  rl::PpoConfig cfg;
  cfg.obs_dim = 32;
  cfg.act_dim = 5;
  cfg.hidden = 64;
  cfg.update_epochs = 6;
  Rng rng(5);
  rl::PpoAgent agent(cfg, rng);
  Rng arng(6);
  for (auto _ : state) {
    state.PauseTiming();
    rl::RolloutBuffer buf(32, 5);
    std::vector<float> obs(32, 0.1f);
    for (int i = 0; i < 20; ++i) {
      auto a = agent.act(obs, arng);
      rl::Transition t;
      t.obs = obs;
      t.action = a.action;
      t.log_prob = a.log_prob;
      t.value = a.value;
      t.reward = 0.1f;
      buf.add(std::move(t));
    }
    buf.finish(cfg.gamma, cfg.gae_lambda);
    state.ResumeTiming();
    benchmark::DoNotOptimize(agent.update(buf));
  }
}
BENCHMARK(BM_PpoUpdate);

// Wall-clock of one synchronous FedAvg round (8 nodes, paper CNN) as the
// runtime pool grows: the perf-trajectory tracker for the parallel round
// engine. Results are bit-identical across arguments (determinism
// contract); only time may change. Speedup tops out at the machine's
// physical core count.
static void BM_ParallelRound(benchmark::State& state) {
  runtime::set_threads(static_cast<int>(state.range(0)));
  Rng rng(8);
  auto train =
      data::make_vision_dataset(data::VisionTask::kMnistLike, 160, rng);
  auto test = data::make_vision_dataset(data::VisionTask::kMnistLike, 64, rng);
  fl::FederationConfig cfg;
  cfg.num_nodes = 8;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 10;
  cfg.local.lr = 0.05;
  cfg.eval_batch_size = 16;
  fl::Federation fed(
      cfg, [](Rng& r) { return nn::make_mnist_cnn(r); }, train,
      std::move(test), rng);
  const std::vector<int> everyone{0, 1, 2, 3, 4, 5, 6, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fed.run_round(everyone));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(everyone.size()));
  runtime::set_threads(0);  // restore auto for the remaining benchmarks
}
BENCHMARK(BM_ParallelRound)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Round throughput with the double-buffered round pipeline (DESIGN.md
// §5.14) off (arg 0) and on (arg 1), on an eval-heavy real-training
// market: the test-set evaluation is a large fraction of the round, so
// overlapping it with the next round's local training is where the
// pipeline's speedup lives. Byte-identity of the two modes is pinned by
// tests/core/pipeline_env_test.cpp; this benchmark tracks the wall-clock
// side of the contract (acceptance: pipelined ≥ 1.3× rounds/sec).
static void BM_PipelinedRound(benchmark::State& state) {
  const bool pipelined = state.range(0) != 0;
  runtime::set_threads(1);
  core::EnvConfig cfg;
  cfg.num_nodes = 4;
  cfg.budget = 1e12;          // never aborts: steady-state throughput
  cfg.max_rounds = 1 << 20;   // the episode outlives any iteration count
  cfg.backend = core::BackendKind::kRealBlobs;
  cfg.samples_per_node = 40;
  cfg.test_samples = 768;     // eval-heavy: eval ~ half the round
  cfg.local.epochs = 2;
  cfg.local.batch_size = 10;
  cfg.local.lr = 0.05;
  cfg.seed = 11;
  core::EdgeLearnEnv env(cfg);
  env.reset();
  std::vector<double> prices;
  for (int i = 0; i < env.num_nodes(); ++i)
    prices.push_back(env.per_node_price_cap(i) * 0.5);
  for (auto _ : state) {
    if (pipelined) {
      auto out = env.step_pipelined(prices);
      benchmark::DoNotOptimize(out.prev_valid);
    } else {
      auto r = env.step(prices);
      benchmark::DoNotOptimize(r.accuracy);
    }
  }
  if (env.has_pending()) env.drain();
  state.SetItemsProcessed(state.iterations());
  runtime::set_threads(0);
}
BENCHMARK(BM_PipelinedRound)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

static void BM_ChironEpisode(benchmark::State& state) {
  core::EnvConfig cfg;
  cfg.num_nodes = 5;
  cfg.budget = 60.0;
  cfg.backend = core::BackendKind::kSurrogate;
  core::EdgeLearnEnv env(cfg);
  core::ChironConfig cc;
  cc.episodes = 1;
  core::HierarchicalMechanism mech(env, cc);
  for (auto _ : state) {
    auto s = mech.run_episode(true, true);
    benchmark::DoNotOptimize(s.rounds);
  }
}
BENCHMARK(BM_ChironEpisode);

BENCHMARK_MAIN();
