// Fig. 4 — MNIST, 5 edge nodes, varying total budget η:
//   (a) final global model accuracy, (b) completed training rounds,
//   (c) time efficiency (Eqn 16) — Chiron vs DRL-based vs Greedy.
// One TSV row per (budget, approach); panels are columns.
#include <iostream>

#include "common/csv.h"
#include "harness_common.h"

using namespace chiron;

int main(int argc, char** argv) {
  bench::HarnessOptions opt = bench::read_options(argc, argv);
  bench::ObsSession obs_session(opt);
  const std::vector<double> budgets{40, 80, 120, 160, 200};
  TableWriter out(std::cout);
  out.header({"budget", "approach", "accuracy", "rounds", "time_efficiency",
              "spent", "total_time"});
  for (double budget : budgets) {
    std::cerr << "[fig4] budget " << budget << "\n";
    core::EnvConfig env_cfg =
        bench::make_market(data::VisionTask::kMnistLike, 5, budget, opt);
    for (const auto& r : bench::compare_approaches(env_cfg, opt)) {
      out.row({TableWriter::num(budget, 0), r.name,
               TableWriter::num(r.stats.final_accuracy, 4),
               std::to_string(r.stats.rounds),
               TableWriter::num(r.stats.mean_time_efficiency, 4),
               TableWriter::num(r.stats.spent, 2),
               TableWriter::num(r.stats.total_time, 1)});
    }
  }
  return 0;
}
