// Serving-path load benchmark (google-benchmark): concurrent clients
// hammer a MechanismServer and we measure pricing throughput and
// submit→response latency. The {clients} × {batch_max} grid is the
// micro-batching exhibit — at 8+ concurrent clients the batched forwards
// (batch_max 32) must beat single dispatch (batch_max 1) on nodes/sec,
// which is the serving acceptance criterion recorded in
// BENCH_substrate.json by tools/bench_substrate.sh.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "runtime/thread_pool.h"
#include "serve/engine.h"
#include "serve/server.h"

using namespace chiron;

namespace {

// A realistic mid-size deployment: 8 nodes, the training default hidden
// width, and the L·3N+2 exterior observation that implies.
serve::MechanismWeights bench_weights() {
  core::MechanismCheckpointInfo info;
  info.num_nodes = 8;
  info.exterior_obs_dim = 2 * 3 * 8 + 2;
  info.hidden = 64;
  info.price_cap = 1.0;

  auto mlp = [](std::int64_t in, std::int64_t h, std::int64_t out) {
    return (in * h + h) + (h * h + h) + (h * out + out);
  };
  auto fill = [](std::int64_t n) {
    std::vector<float> v(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] = 0.01f * static_cast<float>(i % 23) - 0.11f;
    return v;
  };
  serve::MechanismWeights w;
  w.info = info;
  w.exterior_policy = fill(mlp(info.exterior_obs_dim, info.hidden, 1) + 1);
  w.exterior_critic = fill(mlp(info.exterior_obs_dim, info.hidden, 1));
  w.inner_policy = fill(mlp(1, info.hidden, info.num_nodes) +
                        info.num_nodes);
  w.inner_critic = fill(mlp(1, info.hidden, 1));
  return w;
}

std::vector<float> bench_state(int i, std::int64_t dim) {
  std::vector<float> s(static_cast<std::size_t>(dim));
  for (std::size_t j = 0; j < s.size(); ++j)
    s[j] = 0.03f * static_cast<float>((i + static_cast<int>(j)) % 31);
  return s;
}

double percentile(std::vector<std::uint64_t> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1));
  return static_cast<double>(v[idx]);
}

}  // namespace

// End-to-end server under concurrent load: range(0) client threads each
// submit a fixed stream of requests; range(1) is the server's batch_max.
static void BM_ServeLoad(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int batch_max = static_cast<int>(state.range(1));
  const int per_client = 64;
  const std::size_t total =
      static_cast<std::size_t>(clients) * per_client;

  const serve::MechanismWeights weights = bench_weights();
  const std::int64_t dim = weights.info.exterior_obs_dim;
  std::vector<std::vector<float>> states;
  states.reserve(total);
  for (std::size_t i = 0; i < total; ++i)
    states.push_back(bench_state(static_cast<int>(i), dim));

  std::vector<std::uint64_t> submit_us(total);
  std::vector<std::uint64_t> latency_us(total);

  for (auto _ : state) {
    serve::ServerConfig cfg;
    cfg.workers = 4;
    cfg.batch_max = batch_max;
    cfg.queue_cap = total;  // no shedding — this measures the happy path
    serve::MechanismServer server(
        weights, cfg, [&](const serve::Message& m) {
          // ids are 1..total and unique; distinct slots race-free.
          latency_us[m.id - 1] = obs::now_us() - submit_us[m.id - 1];
        });

    runtime::ThreadPool drivers(clients);
    std::vector<std::future<void>> done;
    done.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      done.push_back(drivers.submit([&, c] {
        for (int i = 0; i < per_client; ++i) {
          const std::size_t idx =
              static_cast<std::size_t>(c) * per_client +
              static_cast<std::size_t>(i);
          serve::Message m;
          m.type = serve::MsgType::kPriceRequest;
          m.id = idx + 1;
          m.state = states[idx];
          submit_us[idx] = obs::now_us();
          server.submit(std::move(m));
        }
      }));
    }
    for (auto& f : done) f.get();
    server.stop();
  }

  const double nodes_priced = static_cast<double>(state.iterations()) *
                              static_cast<double>(total) *
                              static_cast<double>(weights.info.num_nodes);
  state.counters["nodes_per_sec"] =
      benchmark::Counter(nodes_priced, benchmark::Counter::kIsRate);
  state.counters["p50_us"] =
      percentile(latency_us, 0.50);  // of the last iteration
  state.counters["p99_us"] = percentile(latency_us, 0.99);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(total));
}
BENCHMARK(BM_ServeLoad)
    ->Args({1, 1})
    ->Args({8, 1})
    ->Args({8, 32})
    ->Args({32, 1})
    ->Args({32, 32})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The engine alone: one batched forward of B requests vs B singles —
// isolates the GEMM batching win from queueing effects.
static void BM_PriceBatch(benchmark::State& state) {
  const std::int64_t B = state.range(0);
  serve::MechanismWeights weights = bench_weights();
  weights.version = 1;
  serve::PricingEngine engine(weights.info);
  engine.adopt(weights);

  const std::int64_t dim = weights.info.exterior_obs_dim;
  tensor::Tensor states({B, dim});
  for (std::int64_t b = 0; b < B; ++b) {
    const std::vector<float> s = bench_state(static_cast<int>(b), dim);
    for (std::int64_t j = 0; j < dim; ++j)
      states.at2(b, j) = s[static_cast<std::size_t>(j)];
  }
  for (auto _ : state) {
    auto quotes = engine.price_batch(states);
    benchmark::DoNotOptimize(quotes.data());
  }
  state.SetItemsProcessed(state.iterations() * B);
}
BENCHMARK(BM_PriceBatch)->Arg(1)->Arg(8)->Arg(32);

// QPS-ramp knee finder: offered load doubles per level, submissions are
// paced at the offered rate for a fixed window, and the knee is the last
// level the server absorbs at the offered rate (achieved ≥ 90% of
// offered after draining). The knee_qps / knee_p99_us counters land in
// BENCH_substrate.json next to nodes_per_sec, so serving capacity is
// tracked release over release rather than only happy-path throughput.
static void BM_ServeKnee(benchmark::State& state) {
  using clock = std::chrono::steady_clock;
  const serve::MechanismWeights weights = bench_weights();
  const std::int64_t dim = weights.info.exterior_obs_dim;
  constexpr int kStatePool = 256;
  std::vector<std::vector<float>> pool;
  pool.reserve(kStatePool);
  for (int i = 0; i < kStatePool; ++i) pool.push_back(bench_state(i, dim));

  double knee_qps = 0.0;
  double knee_p99 = 0.0;
  for (auto _ : state) {
    knee_qps = 0.0;
    knee_p99 = 0.0;
    for (double offered = 1000.0; offered <= 262144.0; offered *= 2.0) {
      constexpr double kWindowSec = 0.25;
      const int total =
          std::max(64, static_cast<int>(offered * kWindowSec));
      std::vector<std::uint64_t> submit_us(
          static_cast<std::size_t>(total));
      std::vector<std::uint64_t> latency_us(
          static_cast<std::size_t>(total));
      serve::ServerConfig cfg;
      cfg.workers = 4;
      cfg.batch_max = 32;
      cfg.queue_cap = static_cast<std::size_t>(total);  // no shedding
      serve::MechanismServer server(
          weights, cfg, [&](const serve::Message& m) {
            latency_us[m.id - 1] = obs::now_us() - submit_us[m.id - 1];
          });
      const auto t0 = clock::now();
      const auto gap = std::chrono::nanoseconds(
          static_cast<std::int64_t>(1e9 / offered));
      for (int i = 0; i < total; ++i) {
        std::this_thread::sleep_until(t0 + gap * i);
        serve::Message m;
        m.type = serve::MsgType::kPriceRequest;
        m.id = static_cast<std::uint64_t>(i) + 1;
        m.state = pool[static_cast<std::size_t>(i % kStatePool)];
        submit_us[static_cast<std::size_t>(i)] = obs::now_us();
        server.submit(std::move(m));
      }
      server.stop();  // drains the queue: every response has arrived
      const double wall_sec =
          std::chrono::duration<double>(clock::now() - t0).count();
      const double achieved = static_cast<double>(total) / wall_sec;
      if (achieved < 0.9 * offered) break;  // past the knee: overloaded
      knee_qps = offered;
      knee_p99 = percentile(latency_us, 0.99);
    }
  }
  state.counters["knee_qps"] = knee_qps;
  state.counters["knee_p99_us"] = knee_p99;
}
BENCHMARK(BM_ServeKnee)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
