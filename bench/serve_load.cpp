// Serving-path load benchmark (google-benchmark): concurrent clients
// hammer a MechanismServer and we measure pricing throughput and
// submit→response latency. The {clients} × {batch_max} grid is the
// micro-batching exhibit — at 8+ concurrent clients the batched forwards
// (batch_max 32) must beat single dispatch (batch_max 1) on nodes/sec,
// which is the serving acceptance criterion recorded in
// BENCH_substrate.json by tools/bench_substrate.sh.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/clock.h"
#include "runtime/thread_pool.h"
#include "serve/engine.h"
#include "serve/server.h"

using namespace chiron;

namespace {

// A realistic mid-size deployment: 8 nodes, the training default hidden
// width, and the L·3N+2 exterior observation that implies.
serve::MechanismWeights bench_weights() {
  core::MechanismCheckpointInfo info;
  info.num_nodes = 8;
  info.exterior_obs_dim = 2 * 3 * 8 + 2;
  info.hidden = 64;
  info.price_cap = 1.0;

  auto mlp = [](std::int64_t in, std::int64_t h, std::int64_t out) {
    return (in * h + h) + (h * h + h) + (h * out + out);
  };
  auto fill = [](std::int64_t n) {
    std::vector<float> v(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] = 0.01f * static_cast<float>(i % 23) - 0.11f;
    return v;
  };
  serve::MechanismWeights w;
  w.info = info;
  w.exterior_policy = fill(mlp(info.exterior_obs_dim, info.hidden, 1) + 1);
  w.exterior_critic = fill(mlp(info.exterior_obs_dim, info.hidden, 1));
  w.inner_policy = fill(mlp(1, info.hidden, info.num_nodes) +
                        info.num_nodes);
  w.inner_critic = fill(mlp(1, info.hidden, 1));
  return w;
}

std::vector<float> bench_state(int i, std::int64_t dim) {
  std::vector<float> s(static_cast<std::size_t>(dim));
  for (std::size_t j = 0; j < s.size(); ++j)
    s[j] = 0.03f * static_cast<float>((i + static_cast<int>(j)) % 31);
  return s;
}

double percentile(std::vector<std::uint64_t> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1));
  return static_cast<double>(v[idx]);
}

}  // namespace

// End-to-end server under concurrent load: range(0) client threads each
// submit a fixed stream of requests; range(1) is the server's batch_max.
static void BM_ServeLoad(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int batch_max = static_cast<int>(state.range(1));
  const int per_client = 64;
  const std::size_t total =
      static_cast<std::size_t>(clients) * per_client;

  const serve::MechanismWeights weights = bench_weights();
  const std::int64_t dim = weights.info.exterior_obs_dim;
  std::vector<std::vector<float>> states;
  states.reserve(total);
  for (std::size_t i = 0; i < total; ++i)
    states.push_back(bench_state(static_cast<int>(i), dim));

  std::vector<std::uint64_t> submit_us(total);
  std::vector<std::uint64_t> latency_us(total);

  for (auto _ : state) {
    serve::ServerConfig cfg;
    cfg.workers = 4;
    cfg.batch_max = batch_max;
    cfg.queue_cap = total;  // no shedding — this measures the happy path
    serve::MechanismServer server(
        weights, cfg, [&](const serve::Message& m) {
          // ids are 1..total and unique; distinct slots race-free.
          latency_us[m.id - 1] = obs::now_us() - submit_us[m.id - 1];
        });

    runtime::ThreadPool drivers(clients);
    std::vector<std::future<void>> done;
    done.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      done.push_back(drivers.submit([&, c] {
        for (int i = 0; i < per_client; ++i) {
          const std::size_t idx =
              static_cast<std::size_t>(c) * per_client +
              static_cast<std::size_t>(i);
          serve::Message m;
          m.type = serve::MsgType::kPriceRequest;
          m.id = idx + 1;
          m.state = states[idx];
          submit_us[idx] = obs::now_us();
          server.submit(std::move(m));
        }
      }));
    }
    for (auto& f : done) f.get();
    server.stop();
  }

  const double nodes_priced = static_cast<double>(state.iterations()) *
                              static_cast<double>(total) *
                              static_cast<double>(weights.info.num_nodes);
  state.counters["nodes_per_sec"] =
      benchmark::Counter(nodes_priced, benchmark::Counter::kIsRate);
  state.counters["p50_us"] =
      percentile(latency_us, 0.50);  // of the last iteration
  state.counters["p99_us"] = percentile(latency_us, 0.99);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(total));
}
BENCHMARK(BM_ServeLoad)
    ->Args({1, 1})
    ->Args({8, 1})
    ->Args({8, 32})
    ->Args({32, 1})
    ->Args({32, 32})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The engine alone: one batched forward of B requests vs B singles —
// isolates the GEMM batching win from queueing effects.
static void BM_PriceBatch(benchmark::State& state) {
  const std::int64_t B = state.range(0);
  serve::MechanismWeights weights = bench_weights();
  weights.version = 1;
  serve::PricingEngine engine(weights.info);
  engine.adopt(weights);

  const std::int64_t dim = weights.info.exterior_obs_dim;
  tensor::Tensor states({B, dim});
  for (std::int64_t b = 0; b < B; ++b) {
    const std::vector<float> s = bench_state(static_cast<int>(b), dim);
    for (std::int64_t j = 0; j < dim; ++j)
      states.at2(b, j) = s[static_cast<std::size_t>(j)];
  }
  for (auto _ : state) {
    auto quotes = engine.price_batch(states);
    benchmark::DoNotOptimize(quotes.data());
  }
  state.SetItemsProcessed(state.iterations() * B);
}
BENCHMARK(BM_PriceBatch)->Arg(1)->Arg(8)->Arg(32);

BENCHMARK_MAIN();
